"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``calibrate`` — run MBS, print Tables 1-3 for the chosen machine;
* ``profile``   — break one TPC-H query (or all) down on one engine;
* ``sql``       — execute a SQL statement and show its energy breakdown;
* ``trace``     — execute a SQL statement under the span tracer and
  export the per-operator energy trace (JSONL / Chrome / flamegraph);
* ``experiment``— regenerate one paper table/figure by id;
* ``poc``       — run the §4 DTCM proof-of-concept (Figure 13);
* ``serve``     — run the concurrent query-serving simulation and
  emit its JSON report (policies, admission control, tenants); with
  ``--cluster``, a sharded scatter-gather cluster of N nodes behind a
  simulated network;
* ``chaos``     — a serve run under deterministic fault injection,
  with retries/deadlines/circuit-breaker resilience and a report that
  splits Active energy into useful vs wasted joules; the ``node`` and
  ``partition`` scenarios run cluster-mode chaos (crashes, stragglers,
  partitions, drops) with failover and hedging;
* ``diff``      — load two run artifacts (bench/serve reports, trace
  JSONL) and print ranked Δ-energy attributions per operator,
  micro-op class, and cache level.

All commands accept ``--scale`` (cache divisor, default 16),
``--tier`` (data tier, default 100MB), ``--seed`` (the one root seed
every stochastic component derives from) and ``-v``/``-vv`` for
INFO/DEBUG logging; ``calibrate`` and ``profile`` also take ``--json``
for machine-readable output.  Errors raised by the toolkit exit with
status 2 and a one-line message, never a traceback.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro import Machine, __version__, intel_i7_4790
from repro.analysis import EXPERIMENTS, Lab, LabConfig
from repro.core import (
    calibrate,
    profile_workload,
    render_breakdown_bar,
    render_breakdown_rows,
    render_delta_e,
    render_microbench_behaviour,
    render_verification,
    verify,
)
from repro.db import Database, ENGINES, engine_profile
from repro.db.profiles import SETTINGS
from repro.errors import ReproError
from repro.logconfig import configure_logging
from repro.seeding import derive_seed
from repro.workloads.tpch import (
    ALL_QUERY_NUMBERS,
    TpchData,
    load_into,
    run_query,
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=int, default=16,
                        help="cache scale divisor (1 = full i7-4790)")
    parser.add_argument("--tier", default="100MB",
                        choices=["10MB", "100MB", "500MB", "1GB"],
                        help="TPC-H data tier")
    parser.add_argument("--seed", type=int, default=0,
                        help="measurement-noise seed")
    parser.add_argument("--exec-mode", default="batched",
                        choices=["reference", "batched"],
                        help="simulator execution engine (batched is "
                             "bit-identical to the per-op reference path)")
    # SUPPRESS keeps the top-level -v value when the subcommand parses
    # without the flag (subparser defaults would otherwise reset it).
    parser.add_argument("-v", "--verbose", action="count",
                        default=argparse.SUPPRESS,
                        help="-v: INFO logging, -vv: DEBUG")


def _machine(args) -> Machine:
    return Machine(intel_i7_4790(scale=args.scale),
                   seed=derive_seed(args.seed, "machine-noise"),
                   exec_mode=getattr(args, "exec_mode", "batched"))


def _tpch_data(args) -> TpchData:
    """TPC-H data with the generator seed derived from ``--seed``.

    Every stochastic component reachable from the CLI hangs off the one
    ``--seed`` flag: measurement noise, datagen, and (for ``serve``)
    the arrival processes each get an independent derived stream.
    """
    return TpchData(args.tier, seed=derive_seed(args.seed, "tpch-datagen"))


def cmd_calibrate(args) -> int:
    machine = _machine(args)
    cal = calibrate(machine)
    report = verify(machine, cal.delta_e, background=cal.background)
    if args.json:
        print(json.dumps({
            "machine": machine.config.name,
            "pstate": cal.pstate,
            "delta_e_nj": cal.delta_e.nanojoules(),
            "verification": {
                "rows": [
                    {"name": row.name,
                     "measured_j": row.measured_j,
                     "estimated_j": row.estimated_j,
                     "accuracy_pct": row.accuracy_pct}
                    for row in report.rows
                ],
                "average_accuracy_pct": report.average_accuracy_pct,
            },
        }, indent=2, sort_keys=True))
        return 0
    print(f"machine: {machine.config.name}")
    print(render_microbench_behaviour(cal.results))
    print()
    print(render_delta_e({cal.pstate: cal.delta_e.nanojoules()}))
    print()
    print(render_verification(report))
    return 0


def _export_trace(trace, out_dir: pathlib.Path, stem: str, title: str) -> list:
    """Write the three export formats for one trace; returns the paths."""
    from repro.obs import write_chrome_trace, write_flamegraph, write_jsonl

    out_dir.mkdir(parents=True, exist_ok=True)
    paths = [out_dir / f"{stem}.jsonl",
             out_dir / f"{stem}.chrome.json",
             out_dir / f"{stem}.svg"]
    write_jsonl(trace, paths[0])
    write_chrome_trace(trace, paths[1])
    write_flamegraph(trace, paths[2], title=title)
    return paths


def cmd_profile(args) -> int:
    from repro.obs import Tracer

    machine = _machine(args)
    if not args.json:
        print("calibrating ...", file=sys.stderr)
    cal = calibrate(machine)
    db = Database(machine, engine_profile(args.engine), name=args.engine)
    load_into(db, _tpch_data(args))
    numbers = args.query or list(ALL_QUERY_NUMBERS)
    profiles = {}
    for number in numbers:
        workload = lambda number=number: run_query(db, number)
        profiles[f"Q{number}"] = profile_workload(
            machine, f"Q{number}", workload, cal.delta_e,
            background=cal.background, warmup=workload,
        )
        if args.trace_out:
            tracer = Tracer(machine, background=cal.background,
                            delta_e=cal.delta_e, name=f"Q{number}")
            with tracer:
                workload()
            for path in _export_trace(
                tracer.trace, pathlib.Path(args.trace_out),
                f"q{number:02d}", f"Q{number} ({args.engine}, {args.tier})",
            ):
                print(f"wrote {path}", file=sys.stderr)
    if args.json:
        print(json.dumps({
            "engine": args.engine,
            "tier": args.tier,
            "machine": machine.config.name,
            "queries": {
                name: {
                    "active_energy_j": p.breakdown.active_energy_j,
                    "busy_s": p.busy_s,
                    "time_s": p.time_s,
                    "domain": p.domain,
                    "components_j": p.breakdown.components(),
                    "shares_pct": p.breakdown.shares_pct(),
                    "l1d_share_pct": p.breakdown.l1d_share_pct,
                }
                for name, p in profiles.items()
            },
        }, indent=2, sort_keys=True))
        return 0
    breakdowns = {name: p.breakdown for name, p in profiles.items()}
    print(render_breakdown_rows(
        breakdowns, f"Active-energy breakdown ({args.engine}, {args.tier})"
    ))
    return 0


def cmd_trace(args) -> int:
    from repro.micro.measurement import run_measured
    from repro.obs import Tracer
    from repro.obs.sampler import SamplingAggregator
    from repro.obs.timeline import TimelineRecorder, write_timeline

    machine = _machine(args)
    print("calibrating ...", file=sys.stderr)
    cal = calibrate(machine)
    db = Database(machine, engine_profile(args.engine), name=args.engine)
    load_into(db, _tpch_data(args))
    statement = " ".join(args.statement)
    if not args.cold:
        db.sql(statement)  # warm the pools so the trace shows steady state
    timeline = None
    if args.timeline_out:
        timeline = TimelineRecorder(machine, window_s=args.timeline_window,
                                    background=cal.background)
        timeline.start()
    sampled = args.telemetry == "sampler"
    if sampled:
        tracer = SamplingAggregator(
            machine, background=cal.background,
            seed=derive_seed(args.seed, "obs", "exemplars"),
            exemplar_rate=args.exemplar_rate,
            reservoir_size=args.reservoir_size,
            trace_operators=True, timeline=timeline, name="query",
        )
    else:
        tracer = Tracer(machine, background=cal.background,
                        delta_e=cal.delta_e, name="query")
    rows: list = []

    def workload() -> None:
        with tracer:
            rows.extend(db.sql(statement))

    # Measure the window independently of the tracer: the span energies
    # must sum back to this Active energy (the acceptance check).
    measurement = run_measured(machine, workload, cal.background,
                               apply_noise=False)
    if timeline is not None:
        write_timeline(timeline.finish(), args.timeline_out,
                       args.timeline_window)
        print(f"wrote {args.timeline_out}", file=sys.stderr)
    for row in rows[: args.limit]:
        print(row)
    if len(rows) > args.limit:
        print(f"... ({len(rows)} rows)")
    print()
    if sampled:
        summary = tracer.finish()
        print(summary.render_table())
        span_sum = summary.total_active_j
    else:
        trace = tracer.trace
        print(trace.render_tree(max_depth=args.depth))
        span_sum = sum(trace.active_energy_j(s) for s in trace.spans())
    measured = measurement.active_energy_j
    delta_pct = (100.0 * abs(span_sum - measured) / measured
                 if measured else 0.0)
    print(f"\nspan-sum {span_sum:.6e} J vs measured {measured:.6e} J "
          f"({delta_pct:.4f}% apart)")
    if args.metrics:
        print()
        print(machine.metrics.render())
    if not sampled:
        for path in _export_trace(trace, pathlib.Path(args.out), "trace",
                                  f"{statement} ({args.engine}, {args.tier})"):
            print(f"wrote {path}", file=sys.stderr)
    return 0 if delta_pct <= 1.0 else 1


def cmd_sql(args) -> int:
    machine = _machine(args)
    print("calibrating ...", file=sys.stderr)
    cal = calibrate(machine)
    db = Database(machine, engine_profile(args.engine), name=args.engine)
    load_into(db, _tpch_data(args))
    statement = " ".join(args.statement)
    workload = lambda: db.sql(statement)
    rows = workload()
    profile = profile_workload(
        machine, "sql", workload, cal.delta_e, background=cal.background,
    )
    for row in rows[: args.limit]:
        print(row)
    if len(rows) > args.limit:
        print(f"... ({len(rows)} rows)")
    b = profile.breakdown
    print(f"\nE_active {b.active_energy_j:.3e} J over {profile.busy_s:.3e} s")
    print(f"L1D+store share {b.l1d_share_pct:.1f}%   "
          f"{render_breakdown_bar(b)}")
    for name, share in b.shares_pct().items():
        print(f"  {name:<10} {share:5.1f}%")
    return 0


def cmd_experiment(args) -> int:
    from repro.analysis import experiment_to_svg

    lab = Lab(LabConfig(scale=args.scale, tier=args.tier, seed=args.seed))
    failures = 0
    for key in args.id:
        result = EXPERIMENTS[key](lab)
        status = ("PASS" if result.all_checks_pass
                  else "FAIL: " + ", ".join(result.failed_checks()))
        print(f"[{result.experiment_id}] {result.title}  (shape checks: {status})")
        print(result.text)
        print()
        if args.svg_dir:
            import pathlib

            svg = experiment_to_svg(result)
            if svg is not None:
                out = pathlib.Path(args.svg_dir)
                out.mkdir(parents=True, exist_ok=True)
                path = out / f"{result.experiment_id}.svg"
                path.write_text(svg)
                print(f"wrote {path}", file=sys.stderr)
        if not result.all_checks_pass:
            failures += 1
    return 1 if failures else 0


def cmd_poc(args) -> int:
    from repro.tcm import run_poc

    result = run_poc(seed=args.seed)
    print(f"DTCM peak saving: {result.peak_saving_pct:.1f}%")
    for comparison in result.comparisons:
        print(f"  Q{comparison.number:<3} energy {comparison.energy_saving_pct:+6.2f}%  "
              f"perf {comparison.perf_improvement_pct:+6.2f}%")
    print(f"average saving {result.average_energy_saving_pct:.2f}% "
          f"({result.fraction_of_peak_pct:.0f}% of peak), "
          f"perf {result.average_perf_improvement_pct:+.2f}%")
    return 0


def cmd_bench(args) -> int:
    from repro.bench import check_regression, run_bench, write_report

    baseline = None
    if args.check:
        # Read the baseline *before* running (and before write_report):
        # with the default --out both paths point at BENCH_simperf.json,
        # and reading after the write would gate the run against itself.
        # Failing early on a missing baseline also beats failing after a
        # multi-minute run.
        with open(args.check, encoding="utf-8") as handle:
            baseline = json.load(handle)
    results = run_bench(quick=args.quick)
    write_report(results, args.out)
    print(f"wrote {args.out}", file=sys.stderr)
    scan = results["scan_path"]["fig07_tpch_scan"]
    print(f"scan path (fig07 shape): reference {scan['reference_mops']:.2f} "
          f"Mops/s, batched {scan['batched_mops']:.2f} Mops/s "
          f"({scan['speedup']:.1f}x)")
    cold = results["scan_path"]["cold_stream_scan"]
    print(f"cold stream scan: reference {cold['reference_mops']:.2f} "
          f"Mops/s, batched {cold['batched_mops']:.2f} Mops/s "
          f"({cold['speedup']:.1f}x)")
    for name, entry in results["tpch"].items():
        print(f"tpch {name}: reference {entry['reference_s']:.3f}s, "
              f"batched {entry['batched_s']:.3f}s ({entry['speedup']:.2f}x)")
    serve = results["serve"]
    print(f"serve tpch: {serve['tpch']['batched']['requests_per_s']:.1f} "
          f"req/s batched ({serve['tpch']['speedup']:.2f}x vs reference)")
    print(f"serve engine: {serve['engine']['batched']['requests_per_s']:.1f} "
          f"req/s batched ({serve['engine']['speedup']:.2f}x vs reference)")
    scale = results["serve_scale"]
    print(f"serve scale: {scale['completed']} requests over "
          f"{scale['tenants']} tenants in {scale['wall_s']:.1f}s "
          f"({scale['requests_per_s']:.0f} req/s, "
          f"{scale['quanta_per_s']:.0f} quanta/s)")
    cluster = results["cluster"]
    for name, cell in sorted(cluster["cells"].items()):
        print(f"cluster {name}: {cell['energy_per_query_j']:.3e} J/query, "
              f"p99 {cell['p99_s']:.4f}s, "
              f"{100.0 * cell.get('wasted_share', 0.0):.1f}% wasted "
              f"(conservation {'ok' if cell['conservation_ok'] else 'BROKE'})")
    print("cluster cross-mode identity: "
          + ("ok" if cluster["reports_identical"] else "BROKE"))
    if baseline is not None:
        failures = check_regression(results, baseline, args.max_regression)
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        if failures:
            from repro.obs.diff import bench_top_regressor

            worst = bench_top_regressor(results, baseline)
            if worst is not None:
                print(f"REGRESSION top regressor: {worst['name']} "
                      f"({worst['mops_ratio']:.3f}x baseline throughput)",
                      file=sys.stderr)
            return 1
        print("no throughput regression vs baseline", file=sys.stderr)
    return 0


def _serve_config(args, **extra):
    from repro.serve import ServeConfig

    return ServeConfig(
        workload=args.workload,
        policy=args.policy,
        dvfs=args.dvfs,
        mode=args.mode,
        clients=args.clients,
        queries=args.queries,
        tenants=args.tenants,
        cores=args.cores,
        mpl=args.mpl,
        quantum_rows=args.quantum_rows,
        max_queue=args.max_queue,
        tenant_quota=args.tenant_quota,
        queue_timeout_s=args.queue_timeout,
        rate_qps=args.rate,
        think_s=args.think,
        seed=args.seed,
        engine=args.engine,
        setting=args.setting,
        tier=args.tier,
        scale=args.scale,
        exec_mode=getattr(args, "exec_mode", "batched"),
        telemetry=args.telemetry,
        exemplar_rate=args.exemplar_rate,
        reservoir_size=args.reservoir_size,
        timeline_out=args.timeline_out,
        timeline_window_s=args.timeline_window,
        **extra,
    )


def _cluster_config(args, faults=None):
    from repro.cluster import ClusterConfig

    return ClusterConfig(
        nodes=args.nodes,
        replication=args.replication,
        mode=args.mode,
        clients=args.clients,
        queries=args.queries,
        tenants=args.tenants,
        rate_qps=args.rate,
        think_s=args.think,
        seed=args.seed,
        engine=args.engine,
        setting=args.setting,
        tier=args.tier,
        scale=args.scale,
        exec_mode=getattr(args, "exec_mode", "batched"),
        net_latency_s=args.net_latency,
        net_bytes_per_s=args.net_bandwidth,
        faults=faults,
        subreq_timeout_s=args.subreq_timeout,
        failover_attempts=args.failover_attempts,
        failover_backoff_s=args.failover_backoff,
        hedge_quantile=args.hedge_quantile,
        hedge_min_samples=args.hedge_min_samples,
        allow_partial=not args.no_partial,
        breaker_threshold=getattr(args, "breaker_threshold", None),
        breaker_window=getattr(args, "breaker_window", 16),
        breaker_cooloff_s=getattr(args, "breaker_cooloff", 0.1),
        degrade_keep_tenants=getattr(args, "keep_tenants", 1),
    )


def _emit_report(report: dict, out) -> None:
    text = json.dumps(report, indent=2, sort_keys=True)
    if out:
        path = pathlib.Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
        print(f"wrote {path}", file=sys.stderr)
    else:
        print(text)


def cmd_serve(args) -> int:
    import time

    from repro.serve import render_serve_summary, run_serve

    if args.cluster:
        from repro.cluster import render_cluster_summary, run_cluster

        start = time.perf_counter()
        report = run_cluster(_cluster_config(args))
        elapsed_s = time.perf_counter() - start
        _emit_report(report, args.out)
        print(render_cluster_summary(report, elapsed_s=elapsed_s),
              file=sys.stderr)
        return 0
    start = time.perf_counter()
    report = run_serve(_serve_config(args))
    elapsed_s = time.perf_counter() - start
    _emit_report(report, args.out)
    # The one-screen text summary goes to stderr so piping the JSON
    # report from stdout stays clean.  Host wall time feeds the
    # throughput line only; it never enters the JSON report.
    print(render_serve_summary(report, elapsed_s=elapsed_s), file=sys.stderr)
    if args.timeline_out:
        print(f"wrote {args.timeline_out}", file=sys.stderr)
    return 0


#: Fault-plan presets for ``repro chaos --scenario``; explicit fault
#: flags override the preset field-by-field.
CHAOS_SCENARIOS = {
    "none": {},
    "disk": {"disk_error_p": 0.05, "disk_slow_p": 0.05},
    "corrupt": {"page_corrupt_p": 0.05},
    "cpu": {"core_stall_p": 0.05, "dvfs_stuck_p": 0.02},
    "flaky": {"request_error_p": 0.03},
    "mixed": {
        "disk_error_p": 0.02,
        "disk_slow_p": 0.02,
        "page_corrupt_p": 0.02,
        "core_stall_p": 0.02,
        "dvfs_stuck_p": 0.01,
        "request_error_p": 0.02,
    },
    # Cluster-shaped scenarios: these force --cluster mode (the sites
    # only exist there).
    "node": {"node_crash_p": 0.05, "node_slow_p": 0.1},
    "partition": {"net_partition_p": 0.05, "net_drop_p": 0.05},
}

#: Scenarios that imply a cluster run even without ``--cluster``.
_CLUSTER_SCENARIOS = ("node", "partition")

#: (CLI dest, FaultPlan field) pairs for the explicit fault flags.
_CHAOS_FLAG_FIELDS = (
    ("disk_error_p", "disk_error_p"),
    ("disk_retries", "disk_error_max_retries"),
    ("disk_slow_p", "disk_slow_p"),
    ("disk_slow_factor", "disk_slow_factor"),
    ("corrupt_p", "page_corrupt_p"),
    ("stall_p", "core_stall_p"),
    ("stall_s", "core_stall_s"),
    ("dvfs_stuck_p", "dvfs_stuck_p"),
    ("dvfs_stuck_epochs", "dvfs_stuck_epochs"),
    ("request_error_p", "request_error_p"),
    ("node_crash_p", "node_crash_p"),
    ("node_crash_restart", "node_crash_restart_s"),
    ("node_slow_p", "node_slow_p"),
    ("node_slow_factor", "node_slow_factor"),
    ("net_partition_p", "net_partition_p"),
    ("net_partition_s", "net_partition_s"),
    ("net_drop_p", "net_drop_p"),
)


def cmd_chaos(args) -> int:
    from repro.faults import FaultPlan
    from repro.serve import run_serve

    plan_kwargs = dict(CHAOS_SCENARIOS[args.scenario])
    for dest, field in _CHAOS_FLAG_FIELDS:
        value = getattr(args, dest)
        if value is not None:
            plan_kwargs[field] = value
    if args.cluster or args.scenario in _CLUSTER_SCENARIOS:
        import time

        from repro.cluster import render_cluster_summary, run_cluster

        config = _cluster_config(args, faults=FaultPlan(**plan_kwargs))
        start = time.perf_counter()
        report = run_cluster(config)
        elapsed_s = time.perf_counter() - start
        if args.json or args.out:
            _emit_report(report, args.out)
        if not args.json:
            print(render_cluster_summary(report, elapsed_s=elapsed_s))
        return 0
    config = _serve_config(
        args,
        faults=FaultPlan(**plan_kwargs),
        retries=args.retries,
        retry_backoff_s=args.retry_backoff,
        retry_jitter=args.retry_jitter,
        retry_budget=args.retry_budget,
        deadline_s=args.deadline,
        breaker_threshold=args.breaker_threshold,
        breaker_window=args.breaker_window,
        breaker_cooloff_s=args.breaker_cooloff,
        degrade_keep_tenants=args.keep_tenants,
    )
    report = run_serve(config)
    if args.json or args.out:
        _emit_report(report, args.out)
    if not args.json:
        counts = report["counts"]
        resilience = report["resilience"]
        energy = report["energy"]
        print(f"chaos run: scenario={args.scenario} seed={args.seed}")
        print(f"  requests: {counts['issued']} issued, "
              f"{counts['completed']} completed, {counts['failed']} failed, "
              f"{counts['deadline_exceeded']} past deadline, "
              f"{counts['shed_degraded']} shed degraded")
        injected = resilience["faults_injected"]
        fault_text = (", ".join(f"{site}={n}"
                                for site, n in injected.items())
                      or "none")
        print(f"  faults injected: {fault_text}")
        print(f"  retries spent: {resilience['retries_spent']}, "
              f"breaker trips: {resilience['breaker_trips']}, "
              f"core stalls: {resilience['core_stalls']}, "
              f"disk read retries: {resilience['disk_read_retries']}")
        active = energy["active_energy_j"]
        wasted = energy["wasted_energy_j"]
        share = 100.0 * wasted / active if active > 0 else 0.0
        print(f"  energy: {energy['useful_energy_j']:.4e} J useful + "
              f"{wasted:.4e} J wasted = {active:.4e} J active "
              f"({share:.1f}% wasted)")
        for reason, joules in energy["wasted_by_reason_j"].items():
            print(f"    wasted[{reason}]: {joules:.4e} J")
    return 0


def cmd_optimize(args) -> int:
    if args.diff:
        from repro.obs.diff import diff_snapshots, load_snapshot, render_diff

        diff = diff_snapshots(load_snapshot(args.diff[0]),
                              load_snapshot(args.diff[1]))
        if args.json:
            print(json.dumps(diff, indent=2, sort_keys=True))
        else:
            print(render_diff(diff, top=args.top))
        return 0

    if args.compare:
        from repro.workloads.tpch.optimize import ENGINES as HARNESS_ENGINES
        from repro.workloads.tpch.optimize import run_optimizer_bench

        engines = (args.engine,) if args.engine else HARNESS_ENGINES
        queries = tuple(args.query) if args.query else None
        doc = run_optimizer_bench(quick=args.quick, tier=args.tier,
                                  engines=engines, queries=queries)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, indent=2, sort_keys=True)
                handle.write("\n")
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
            return 0
        for engine, per_engine in doc["engines"].items():
            for name, entry in per_engine.items():
                kept = ",".join(entry["kept_passes"]) or "-"
                match = "ok" if entry["rows_match"] else "MISMATCH"
                print(f"{engine:<11} {name:<4} "
                      f"{entry['handbuilt_j']:.3e} J -> "
                      f"{entry['optimized_j']:.3e} J "
                      f"({entry['ratio']:.3f}x)  {entry['outcome']:<10} "
                      f"{match:<8} kept: {kept}")
        s = doc["summary"]
        print(f"\ntier {doc['tier']}: {s['wins']} wins, {s['ties']} ties, "
              f"{s['regressions']} regressions, "
              f"{s['result_mismatches']} mismatches "
              f"({s['topn_wins']} top-N wins, "
              f"{s['join_reorder_wins']} join-reorder wins)")
        return 1 if (s["regressions"] or s["result_mismatches"]) else 0

    from repro.db.optimizer import Optimizer
    from repro.db.optimizer.explain import render_explain
    from repro.workloads.tpch.queries import QUERIES

    tier = args.tier or "10MB"
    lab = Lab(LabConfig(scale=args.scale, tier=tier, seed=args.seed))
    engine = args.engine or "postgresql"
    db = lab.database(engine)
    print("calibrating ...", file=sys.stderr)
    optimizer = Optimizer(db.catalog, db.profile, lab.calibration().delta_e)
    numbers = args.query or [
        n for n in sorted(QUERIES) if QUERIES[n].plan is not None
    ]
    for number in numbers:
        query = QUERIES[number]
        print(f"\n=== Q{number} ({engine}, tier {tier}) ===")
        if query.plan is None:
            print("multi-statement query; each statement is optimized "
                  "as the engine plans it")
            continue
        result = optimizer.optimize(query.plan)
        print(render_explain(result, optimizer.model))
    return 0


def cmd_diff(args) -> int:
    from repro.obs.diff import diff_snapshots, load_snapshot, render_diff

    diff = diff_snapshots(load_snapshot(args.a), load_snapshot(args.b))
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(render_diff(diff, top=args.top))
    return 0


def _add_serve_options(p: argparse.ArgumentParser) -> None:
    """Options shared by every serve-shaped subcommand (serve, chaos)."""
    _add_common(p)
    from repro.serve.drivers import DRIVER_MODES
    from repro.serve.policies import DVFS_MODES, POLICIES
    from repro.serve.workload import MIXES

    p.add_argument("--workload", default="tpch", choices=list(MIXES),
                   help="query mix the clients draw from")
    p.add_argument("--policy", default="fifo", choices=list(POLICIES),
                   help="scheduling policy")
    p.add_argument("--dvfs", default="race", choices=list(DVFS_MODES),
                   help="frequency strategy: race-to-idle / pace / EIST")
    p.add_argument("--mode", default="closed", choices=list(DRIVER_MODES),
                   help="open-loop Poisson or closed-loop clients")
    p.add_argument("--engine", default="postgresql", choices=list(ENGINES))
    p.add_argument("--setting", default="baseline", choices=list(SETTINGS),
                   help="engine configuration (buffer pool sizing)")
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent client sessions")
    p.add_argument("--queries", type=int, default=40,
                   help="total queries to issue across all clients")
    p.add_argument("--tenants", type=int, default=2,
                   help="tenants the clients are spread over")
    p.add_argument("--cores", type=int, default=2,
                   help="virtual cores to time-slice across")
    p.add_argument("--mpl", type=int, default=2,
                   help="multiprogramming level per core")
    p.add_argument("--quantum-rows", type=int, default=64,
                   help="iterator pulls per scheduling quantum")
    p.add_argument("--max-queue", type=int, default=64,
                   help="admission queue bound")
    p.add_argument("--tenant-quota", type=int, default=None,
                   help="max queued+running requests per tenant")
    p.add_argument("--queue-timeout", type=float, default=None,
                   help="shed requests queued longer than this (sim s)")
    p.add_argument("--rate", type=float, default=50.0,
                   help="open-loop aggregate arrival rate (queries/s)")
    p.add_argument("--think", type=float, default=0.0,
                   help="closed-loop mean think time (sim s)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the JSON report to FILE (default: stdout)")
    p.add_argument("--telemetry", default="full",
                   choices=["full", "sampler", "off"],
                   help="full span recording, streaming sampler "
                        "aggregates, or no telemetry at all")
    p.add_argument("--exemplar-rate", type=float, default=0.1,
                   help="sampler: fraction of spans offered to the "
                        "exemplar reservoir (aggregates stay exact)")
    p.add_argument("--reservoir-size", type=int, default=64,
                   help="sampler: exemplar spans kept")
    p.add_argument("--timeline-out", metavar="FILE", default=None,
                   help="record a fixed-window timeline over simulated "
                        "time (.csv = CSV, else JSONL)")
    p.add_argument("--timeline-window", type=float, default=0.01,
                   help="timeline window length (sim s)")
    _add_cluster_options(p)


def _add_cluster_options(p: argparse.ArgumentParser) -> None:
    """Sharded-cluster mode, shared by ``serve`` and ``chaos``."""
    g = p.add_argument_group("cluster mode")
    g.add_argument("--cluster", action="store_true",
                   help="run the sharded scatter-gather cluster instead "
                        "of the single-machine serve loop")
    g.add_argument("--nodes", type=int, default=4,
                   help="data nodes (= shards per table)")
    g.add_argument("--replication", type=int, default=2,
                   help="replicas per shard (1 = no failover possible)")
    g.add_argument("--net-latency", type=float, default=2e-4,
                   help="base per-link network latency (sim s)")
    g.add_argument("--net-bandwidth", type=float, default=1.25e8,
                   help="link bandwidth (bytes per sim s)")
    g.add_argument("--subreq-timeout", type=float, default=0.05,
                   help="coordinator timeout per sub-request attempt")
    g.add_argument("--failover-attempts", type=int, default=3,
                   help="max attempts per sub-request, first included")
    g.add_argument("--failover-backoff", type=float, default=0.002,
                   help="delay before a failover re-dispatch (sim s)")
    g.add_argument("--hedge-quantile", type=float, default=0.95,
                   help="hedge once a sub-request outlives this latency "
                        "quantile (use --no-hedge to disable)")
    g.add_argument("--no-hedge", dest="hedge_quantile",
                   action="store_const", const=None,
                   help="disable hedged requests")
    g.add_argument("--hedge-min-samples", type=int, default=16,
                   help="completed sub-requests before hedging arms")
    g.add_argument("--no-partial", action="store_true",
                   help="fail requests with unreachable shards instead "
                        "of degrading to partial results")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Micro-op energy analysis of database systems "
                    "(EDBT 2020 reproduction)",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="-v: INFO logging, -vv: DEBUG")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("calibrate", help="run MBS/VMBS; print Tables 1-3")
    _add_common(p)
    p.add_argument("--json", action="store_true",
                   help="emit the dE table and verification as JSON")
    p.set_defaults(fn=cmd_calibrate)

    p = sub.add_parser("profile", help="break TPC-H queries down")
    _add_common(p)
    p.add_argument("--engine", default="sqlite", choices=list(ENGINES))
    p.add_argument("--query", "-q", type=int, action="append",
                   choices=list(ALL_QUERY_NUMBERS), metavar="N",
                   help="query number (repeatable; default: all 22)")
    p.add_argument("--json", action="store_true",
                   help="emit per-query breakdowns as JSON")
    p.add_argument("--trace-out", metavar="DIR",
                   help="additionally trace each query and export "
                        "JSONL/Chrome/flamegraph files into DIR")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "trace", help="trace one SQL statement with per-operator spans"
    )
    _add_common(p)
    p.add_argument("--engine", default="sqlite", choices=list(ENGINES))
    p.add_argument("--out", metavar="DIR", default="trace-out",
                   help="directory for trace exports (default: trace-out)")
    p.add_argument("--limit", type=int, default=10,
                   help="max result rows to print")
    p.add_argument("--depth", type=int, default=None,
                   help="truncate the printed span tree at this depth")
    p.add_argument("--cold", action="store_true",
                   help="skip the warm-up run (trace cold caches/pools)")
    p.add_argument("--metrics", action="store_true",
                   help="also print the machine metrics registry")
    p.add_argument("--telemetry", default="full",
                   choices=["full", "sampler"],
                   help="full span tree or streaming sampler aggregates")
    p.add_argument("--exemplar-rate", type=float, default=0.1,
                   help="sampler: fraction of spans offered to the "
                        "exemplar reservoir")
    p.add_argument("--reservoir-size", type=int, default=64,
                   help="sampler: exemplar spans kept")
    p.add_argument("--timeline-out", metavar="FILE", default=None,
                   help="record a fixed-window timeline over simulated "
                        "time (.csv = CSV, else JSONL)")
    p.add_argument("--timeline-window", type=float, default=0.01,
                   help="timeline window length (sim s)")
    p.add_argument("statement", nargs="+", help="the SELECT statement")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("sql", help="run a SQL statement with energy attribution")
    _add_common(p)
    p.add_argument("--engine", default="sqlite", choices=list(ENGINES))
    p.add_argument("--limit", type=int, default=10,
                   help="max result rows to print")
    p.add_argument("statement", nargs="+", help="the SELECT statement")
    p.set_defaults(fn=cmd_sql)

    p = sub.add_parser("experiment", help="regenerate paper tables/figures")
    _add_common(p)
    p.add_argument("id", nargs="+", choices=sorted(EXPERIMENTS),
                   help="experiment id(s), e.g. fig07 tab02")
    p.add_argument("--svg-dir", metavar="DIR",
                   help="also render breakdown figures as SVG into DIR")
    p.set_defaults(fn=cmd_experiment)

    p = sub.add_parser("poc", help="run the §4 DTCM proof-of-concept")
    _add_common(p)
    p.set_defaults(fn=cmd_poc)

    p = sub.add_parser(
        "serve", help="serve a concurrent query mix; emit a JSON report"
    )
    _add_serve_options(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "chaos",
        help="serve under deterministic fault injection; report the "
             "useful/wasted energy split",
    )
    _add_serve_options(p)
    p.add_argument("--scenario", default="mixed",
                   choices=sorted(CHAOS_SCENARIOS),
                   help="fault-plan preset (explicit flags override)")
    p.add_argument("--disk-error-p", type=float, default=None,
                   help="transient disk read error probability per read")
    p.add_argument("--disk-retries", type=int, default=None,
                   help="IO retries before a read error surfaces")
    p.add_argument("--disk-slow-p", type=float, default=None,
                   help="disk latency spike probability per read")
    p.add_argument("--disk-slow-factor", type=float, default=None,
                   help="access-latency multiplier of a spike")
    p.add_argument("--corrupt-p", type=float, default=None,
                   help="page corruption probability per page fill")
    p.add_argument("--stall-p", type=float, default=None,
                   help="core stall probability per quantum")
    p.add_argument("--stall-s", type=float, default=None,
                   help="stall duration (sim s)")
    p.add_argument("--dvfs-stuck-p", type=float, default=None,
                   help="stuck-DVFS probability per governor epoch")
    p.add_argument("--dvfs-stuck-epochs", type=int, default=None,
                   help="epochs a stuck episode lasts")
    p.add_argument("--request-error-p", type=float, default=None,
                   help="injected request failure probability per quantum")
    p.add_argument("--node-crash-p", type=float, default=None,
                   help="cluster: node crash probability per sub-request")
    p.add_argument("--node-crash-restart", type=float, default=None,
                   help="cluster: reboot time after a crash (sim s)")
    p.add_argument("--node-slow-p", type=float, default=None,
                   help="cluster: straggler probability per sub-request")
    p.add_argument("--node-slow-factor", type=float, default=None,
                   help="cluster: straggler service-time multiplier")
    p.add_argument("--net-partition-p", type=float, default=None,
                   help="cluster: link partition probability per message")
    p.add_argument("--net-partition-s", type=float, default=None,
                   help="cluster: partition episode length (sim s)")
    p.add_argument("--net-drop-p", type=float, default=None,
                   help="cluster: single-message drop probability")
    p.add_argument("--retries", type=int, default=2,
                   help="max retries per failed request (0 = fail fast)")
    p.add_argument("--retry-backoff", type=float, default=0.005,
                   help="base retry backoff (sim s; doubles per failure)")
    p.add_argument("--retry-jitter", type=float, default=0.1,
                   help="seeded jitter fraction on each backoff")
    p.add_argument("--retry-budget", type=int, default=None,
                   help="global cap on retries across the run")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-request execution deadline (sim s)")
    p.add_argument("--breaker-threshold", type=float, default=None,
                   help="windowed failure rate that trips the breaker")
    p.add_argument("--breaker-window", type=int, default=16,
                   help="attempt outcomes in the breaker's window")
    p.add_argument("--breaker-cooloff", type=float, default=0.1,
                   help="sim seconds the breaker stays open")
    p.add_argument("--keep-tenants", type=int, default=1,
                   help="tenants still served in degraded mode")
    p.add_argument("--json", action="store_true",
                   help="print the full JSON report instead of the summary")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "diff",
        help="attribute the energy/time delta between two run artifacts",
    )
    p.add_argument("a", help="baseline artifact (bench/serve report "
                             "JSON, or trace JSONL)")
    p.add_argument("b", help="comparison artifact of the same kind")
    p.add_argument("--top", type=int, default=10,
                   help="rows per ranked dimension (default 10)")
    p.add_argument("--json", action="store_true",
                   help="emit the structured diff instead of text")
    p.add_argument("-v", "--verbose", action="count", default=0,
                   help="-v for INFO, -vv for DEBUG")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser(
        "optimize",
        help="energy-aware optimizer: per-pass EXPLAIN, measured "
             "compare harness, artifact diff",
    )
    _add_common(p)
    # EXPLAIN defaults to 10MB; --compare defers to the harness default
    # (10MB quick, 500MB full) unless --tier is given explicitly.
    p.set_defaults(tier=None)
    p.add_argument("--engine", default=None,
                   choices=sorted(ENGINES),
                   help="engine profile (EXPLAIN default: postgresql; "
                        "compare default: all)")
    p.add_argument("-q", "--query", type=int, action="append",
                   choices=ALL_QUERY_NUMBERS, metavar="N",
                   help="TPC-H query number (repeatable; default all)")
    p.add_argument("--compare", action="store_true",
                   help="measure hand-built vs optimized J/query and "
                        "print the win/tie/regression table")
    p.add_argument("--quick", action="store_true",
                   help="with --compare: the CI subset of queries")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="with --compare: write the artifact JSON")
    p.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                   help="diff two --compare artifacts (ranked per-"
                        "query Δ energy)")
    p.add_argument("--top", type=int, default=10,
                   help="with --diff: rows per ranked dimension")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable output")
    p.set_defaults(fn=cmd_optimize)

    p = sub.add_parser(
        "bench",
        help="measure simulator throughput; write BENCH_simperf.json",
    )
    p.add_argument("--quick", action="store_true",
                   help="smaller rep counts (the CI smoke configuration)")
    p.add_argument("--out", metavar="FILE", default="BENCH_simperf.json",
                   help="output report path (default: BENCH_simperf.json)")
    p.add_argument("--check", metavar="BASELINE", default=None,
                   help="fail if batched throughput regresses vs BASELINE")
    p.add_argument("--max-regression", type=float, default=0.30,
                   help="allowed fractional throughput drop (default 0.30)")
    p.add_argument("-v", "--verbose", action="count", default=0,
                   help="-v for INFO, -vv for DEBUG")
    p.set_defaults(fn=cmd_bench)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(getattr(args, "verbose", 0))
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2
    except (OSError, json.JSONDecodeError) as exc:
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(f"repro {args.command}: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
