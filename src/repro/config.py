"""Machine configurations and the two paper presets.

* :func:`intel_i7_4790` — the paper's measurement platform (§2.6):
  L1D 32 KB / L2 256 KB / L3 8 MB, dual-issue, L2 hardware prefetcher,
  P-states 8–36 with EIST.
* :func:`arm1176jzf_s` — the proof-of-concept platform (§4.1):
  16 KB L1D, 32 KB DTCM, no L2/L3, in-order single-issue core.

Both accept a ``scale`` divisor that shrinks every cache (and the DTCM)
by the same factor.  Workload data in this repository is scaled down from
the paper's 100 MB–1 GB to keep pure-Python simulation fast; scaling the
caches with the data preserves the hit-rate regimes the paper's findings
depend on (documented in DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigError
from repro.sim.cpu import TimingConfig
from repro.sim.dvfs import PstateTable, VoltageLaw
from repro.sim.energy import BackgroundPower, EventCost, EventEnergyTable
from repro.sim.tcm import TcmConfig


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size: int
    assoc: int

    def scaled(self, scale: int) -> "CacheConfig":
        size = max(self.assoc * 64 * 2, self.size // scale)
        return CacheConfig(size=size, assoc=self.assoc)


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to build a :class:`repro.sim.machine.Machine`."""

    name: str
    l1d: CacheConfig
    l2: Optional[CacheConfig]
    l3: Optional[CacheConfig]
    timing: TimingConfig
    pstates: PstateTable
    energy_table: EventEnergyTable
    background: BackgroundPower
    tcm: Optional[TcmConfig] = None
    prefetcher_streams: int = 8
    prefetcher_degree: int = 4
    prefetcher_l3_extra: int = 8
    #: Relative std-dev of the multiplicative noise the measurement layer
    #: applies to energy readings (models RAPL/powermeter noise).
    measurement_noise: float = 0.025

    def __post_init__(self) -> None:
        if self.l2 is None and self.l3 is not None:
            raise ConfigError("a machine with L3 must also have L2")

    def with_pstate_range(self, lowest: int, highest: int) -> "MachineConfig":
        table = PstateTable(lowest=lowest, highest=highest, law=self.pstates.law)
        return replace(self, pstates=table)


def _scale_tcm(tcm: Optional[TcmConfig], scale: int) -> Optional[TcmConfig]:
    if tcm is None or scale == 1:
        return tcm
    return TcmConfig(size=max(1024, tcm.size // scale))


def intel_i7_4790(scale: int = 1) -> MachineConfig:
    """The paper's Intel platform, optionally with caches shrunk by ``scale``."""
    if scale < 1:
        raise ConfigError("scale must be >= 1")
    config = MachineConfig(
        name=f"intel-i7-4790{'' if scale == 1 else f'/s{scale}'}",
        l1d=CacheConfig(size=32 * 1024, assoc=8).scaled(scale),
        l2=CacheConfig(size=256 * 1024, assoc=8).scaled(scale),
        l3=CacheConfig(size=8 * 1024 * 1024, assoc=16).scaled(scale),
        timing=TimingConfig(
            lat_l1=4,
            lat_l2=12,
            lat_l3=34,
            dram_lat_ns=60.0,
            lat_tcm=4,
            mlp=8,
            load_issue=0.5,
            store_issue=1.0,
            alu_issue=0.5,
            nop_issue=0.25,
            mul_issue=1.0,
            cmp_issue=0.5,
            branch_issue=1.0,
            other_issue=1.0,
        ),
        pstates=PstateTable(lowest=8, highest=36, law=VoltageLaw(0.6, 1.0 / 6.0)),
        energy_table=EventEnergyTable(),
        background=BackgroundPower(core=4.0, package_total=7.0, dram=1.5),
        tcm=None,
    )
    return config


#: Per-event prices for the ARM core: a ~0.7 GHz embedded in-order part,
#: everything cheaper in absolute terms, DTCM ~10% cheaper than L1D so
#: that B_DTCM_array reproduces the paper's 10% peak saving (§4.3).
_ARM_ENERGY = EventEnergyTable(
    load_l1d=EventCost(0.0, 0.50),
    store_l1d=EventCost(0.0, 0.80),
    xfer_l2=EventCost(0.0, 0.0),      # no L2 on this platform
    stall_cycle=EventCost(0.02, 0.28),
    add=EventCost(0.0, 0.30),
    nop=EventCost(0.0, 0.18),
    mul=EventCost(0.0, 0.55),
    cmp=EventCost(0.0, 0.26),
    branch=EventCost(0.0, 0.34),
    other=EventCost(0.0, 0.30),
    tcm_load=EventCost(0.0, 0.45),    # 10% below load_l1d
    tcm_store=EventCost(0.0, 0.72),   # 10% below store_l1d
    xfer_l3=EventCost(0.0, 0.0),
    pf_l2=EventCost(0.0, 0.0),
    mem_ctl=EventCost(3.0, 1.0),
    writeback=EventCost(0.5, 0.3),
    dram_access=EventCost(28.0, 1.0),
    pf_l3_dram=EventCost(26.0, 1.0),
)


def arm1176jzf_s(scale: int = 1) -> MachineConfig:
    """The proof-of-concept ARM platform with 32 KB DTCM (§4.1)."""
    if scale < 1:
        raise ConfigError("scale must be >= 1")
    return MachineConfig(
        name=f"arm1176jzf-s{'' if scale == 1 else f'/s{scale}'}",
        l1d=CacheConfig(size=16 * 1024, assoc=4).scaled(scale),
        l2=None,
        l3=None,
        timing=TimingConfig(
            lat_l1=3,
            lat_l2=3,      # unused (no L2) but must be >= 1
            lat_l3=3,      # unused
            dram_lat_ns=120.0,
            lat_tcm=3,     # DTCM is as fast as L1 (§4.1)
            mlp=1,         # in-order: no miss overlap
            load_issue=1.0,
            store_issue=1.0,
            alu_issue=1.0,
            nop_issue=1.0,
            mul_issue=2.0,
            cmp_issue=1.0,
            branch_issue=1.5,
            other_issue=1.0,
        ),
        # Single operating point at 0.7 GHz: the board has no EIST.
        pstates=PstateTable(lowest=7, highest=7, law=VoltageLaw(1.0, 0.3)),
        energy_table=_ARM_ENERGY,
        background=BackgroundPower(core=0.35, package_total=0.55, dram=0.20),
        tcm=_scale_tcm(TcmConfig(size=32 * 1024), scale),
        prefetcher_streams=0,  # ARM1176 has no L2 stream prefetcher
        prefetcher_degree=0,
        prefetcher_l3_extra=0,
    )


#: Scaled-down presets for fast unit tests (tiny caches, same behaviour).
def tiny_intel() -> MachineConfig:
    """i7-4790 with caches shrunk 16x — for tests and quick examples."""
    return intel_i7_4790(scale=16)


def tiny_arm() -> MachineConfig:
    """ARM1176JZF-S with caches shrunk 4x — for tests."""
    return arm1176jzf_s(scale=4)
