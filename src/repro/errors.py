"""Exception hierarchy for the repro library.

Every error raised on purpose by this package derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid machine, cache, or engine configuration was supplied."""


class AllocationError(ReproError):
    """The simulated address space (or a TCM region) could not satisfy an
    allocation request."""


class CalibrationError(ReproError):
    """The micro-benchmark calibration could not solve a per-operation
    energy cost (e.g. a benchmark never exercised the target operation)."""


class DatabaseError(ReproError):
    """Base class for errors raised by the mini database engine."""


class CatalogError(DatabaseError):
    """An unknown table, column, or index was referenced."""


class SqlError(DatabaseError):
    """The SQL front-end rejected a statement."""


class PlanError(DatabaseError):
    """A physical plan was malformed (wrong arity, unbound column, ...)."""


class TraceError(ReproError):
    """The observability layer was misused (mismatched span enter/exit,
    finishing a trace with spans still open, ...)."""
