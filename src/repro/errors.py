"""Exception hierarchy for the repro library.

Every error raised on purpose by this package derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid machine, cache, or engine configuration was supplied."""


class AllocationError(ReproError):
    """The simulated address space (or a TCM region) could not satisfy an
    allocation request."""


class CalibrationError(ReproError):
    """The micro-benchmark calibration could not solve a per-operation
    energy cost (e.g. a benchmark never exercised the target operation)."""


class DatabaseError(ReproError):
    """Base class for errors raised by the mini database engine."""


class CatalogError(DatabaseError):
    """An unknown table, column, or index was referenced."""


class SqlError(DatabaseError):
    """The SQL front-end rejected a statement."""


class PlanError(DatabaseError):
    """A physical plan was malformed (wrong arity, unbound column, ...)."""


class TraceError(ReproError):
    """The observability layer was misused (mismatched span enter/exit,
    finishing a trace with spans still open, ...)."""


class DiffError(ReproError):
    """Two snapshots could not be compared (unrecognised artifact,
    mismatched kinds, or different schema versions)."""


class ServeError(ReproError):
    """The serving layer was misused at runtime (dispatching a request
    that is not queued, releasing a slot twice, ...)."""


class DeadlineExceeded(ServeError):
    """A request ran past its execution deadline; the work it consumed
    is accounted as wasted energy."""


class FaultError(ReproError):
    """An injected fault surfaced to the execution layer.  Raised only
    when a :class:`~repro.faults.FaultInjector` is installed; a plain
    run can never see one."""


class FaultConfigError(ConfigError, FaultError):
    """A fault plan or injection site was misconfigured: an unknown
    site name, or a probability outside ``[0, 1]``.  Subclasses both
    :class:`ConfigError` (it is a configuration problem, caught at
    construction) and :class:`FaultError` (it belongs to the fault
    layer), so either family of handler sees it."""


class ClusterError(ReproError):
    """The simulated cluster was misused at runtime (an event for an
    unknown node, a response for a request that never dispatched, ...)."""


class TransientDiskError(FaultError):
    """A simulated disk read failed transiently.  The failed attempt
    still cost real device time, carried in :attr:`elapsed_s` so the
    caller charges it before retrying."""

    def __init__(self, block: int, elapsed_s: float):
        super().__init__(
            f"transient read error at block {block} "
            f"(after {elapsed_s:.3e}s of device time)"
        )
        self.block = block
        self.elapsed_s = elapsed_s


class PageCorruptionError(FaultError):
    """A page failed its checksum repeatedly and could not be repaired
    by re-reading it from disk."""
