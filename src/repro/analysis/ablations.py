"""Ablations for the reproduction's own design choices.

DESIGN.md makes several modelling claims that deserve their own
evidence, independent of the paper's experiments:

* ``ablation_prefetcher`` — the stream prefetcher is what keeps
  sequential scans' stall share low (turn it off and stalls surface);
* ``ablation_instruction_mix`` — the per-tuple engine instruction mix
  drives the headline L1D share, monotonically (it is a calibrated
  model input, and this shows its sensitivity);
* ``ablation_cache_scale`` — shrinking caches and data *together*
  preserves the breakdown (the substitution argument of DESIGN.md §2);
* ``ablation_noise`` — Table 3's verification accuracy degrades
  gracefully with measurement noise, so the ~93-98% figures are a
  property of the method, not of a silent zero-noise simulator.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro import Machine, intel_i7_4790
from repro.analysis.experiments import ExperimentResult
from repro.analysis.lab import Lab
from repro.core.accuracy import verify
from repro.core.calibration import calibrate
from repro.core.profiler import profile_workload
from repro.core.report import render_table
from repro.db.engine import Database
from repro.db.profiles import sqlite_like
from repro.workloads.basic_ops import run_basic_operation
from repro.workloads.tpch import TpchData, load_into, run_query


def _profiled_scan(machine, db, cal, name: str, prefetcher: bool = True):
    workload = lambda: run_basic_operation(db, "table_scan")
    return profile_workload(
        machine, name, workload, cal.delta_e, background=cal.background,
        prefetcher=prefetcher, warmup=workload,
    )


def ablation_prefetcher(lab: Optional[Lab] = None) -> ExperimentResult:
    """Table scan with the hardware prefetcher on vs off."""
    lab = lab or Lab()
    machine = lab.machine
    cal = lab.calibration()
    db = lab.database("sqlite")
    rows = []
    data = {}
    for enabled in (True, False):
        profile = _profiled_scan(machine, db, cal,
                                 f"scan/pf={enabled}", prefetcher=enabled)
        shares = profile.breakdown.shares_pct()
        data["on" if enabled else "off"] = {
            "stall_pct": shares["E_stall"],
            "pf_pct": shares["E_pf"],
            "mem_pct": shares["E_mem"],
            "busy_s": profile.busy_s,
        }
        rows.append(["on" if enabled else "off", shares["E_stall"],
                     shares["E_pf"], shares["E_mem"], profile.busy_s])
    machine.set_prefetcher(True)
    checks = {
        "prefetcher_hides_stalls": (
            data["off"]["stall_pct"] > data["on"]["stall_pct"] * 1.5
        ),
        "prefetcher_speeds_up_scan": data["off"]["busy_s"] > data["on"]["busy_s"],
        "pf_energy_only_when_enabled": data["off"]["pf_pct"] < 0.5,
    }
    return ExperimentResult(
        "ablation_prefetcher", "Stream prefetcher on/off (table scan)",
        render_table(["prefetcher", "E_stall%", "E_pf%", "E_mem%", "busy (s)"],
                     rows, title="Ablation: prefetcher vs scan stalls"),
        data, checks,
    )


def ablation_instruction_mix(lab: Optional[Lab] = None) -> ExperimentResult:
    """Scale the per-tuple engine instruction mix 0.5x / 1x / 2x."""
    lab = lab or Lab()
    machine = lab.machine
    cal = lab.calibration()
    data = {}
    rows = []
    for factor in (0.5, 1.0, 2.0):
        base = sqlite_like()
        profile = dataclasses.replace(
            base,
            state_loads_per_row=int(base.state_loads_per_row * factor),
            state_stores_per_row=int(base.state_stores_per_row * factor),
        )
        db = Database(machine, profile, name=f"mix{factor}")
        load_into(db, lab.dataset())
        measured = _profiled_scan(machine, db, cal, f"scan/mix={factor}")
        data[str(factor)] = measured.breakdown.l1d_share_pct
        rows.append([f"{factor}x", measured.breakdown.l1d_share_pct,
                     measured.breakdown.data_movement_share_pct])
    checks = {
        "l1d_share_monotone_in_mix": data["0.5"] < data["1.0"] < data["2.0"],
        "halving_leaves_l1d_substantial": data["0.5"] > 25.0,
    }
    return ExperimentResult(
        "ablation_instruction_mix",
        "Per-tuple instruction-mix sensitivity (SQLite table scan)",
        render_table(["mix scale", "L1D+store share %", "movement %"], rows,
                     title="Ablation: engine instruction mix"),
        data, checks,
    )


def ablation_cache_scale(scales: tuple = (8, 16, 32),
                         seed: int = 0) -> ExperimentResult:
    """The DESIGN.md §2 claim: scaling caches+data together is neutral."""
    data = {}
    rows = []
    for scale in scales:
        machine = Machine(intel_i7_4790(scale=scale), seed=seed)
        cal = calibrate(machine)
        db = Database(machine, sqlite_like(), name=f"s{scale}")
        load_into(db, TpchData("100MB"))
        workload = lambda db=db: run_query(db, 1)
        profile = profile_workload(
            machine, f"Q1@s{scale}", workload, cal.delta_e,
            background=cal.background, warmup=workload,
        )
        data[str(scale)] = profile.breakdown.l1d_share_pct
        rows.append([f"1/{scale}", profile.breakdown.l1d_share_pct,
                     profile.breakdown.data_movement_share_pct])
    spread = max(data.values()) - min(data.values())
    checks = {
        "l1d_share_stable_across_scales": spread <= 10.0,
        "all_scales_in_paper_band": all(35.0 <= v <= 80.0
                                        for v in data.values()),
    }
    return ExperimentResult(
        "ablation_cache_scale",
        "Cache-scale invariance of the breakdown (TPC-H Q1, SQLite)",
        render_table(["cache scale", "L1D+store share %", "movement %"], rows,
                     title="Ablation: machine scale factor"),
        data, checks,
    )


def ablation_noise(noises: tuple = (0.0, 0.025, 0.05, 0.1),
                   seed: int = 3) -> ExperimentResult:
    """Verification accuracy (Table 3) as a function of measurement noise."""
    data = {}
    rows = []
    for noise in noises:
        config = dataclasses.replace(intel_i7_4790(scale=16),
                                     measurement_noise=noise)
        machine = Machine(config, seed=seed)
        cal = calibrate(machine)
        report = verify(machine, cal.delta_e, background=cal.background)
        data[str(noise)] = report.average_accuracy_pct
        rows.append([f"{noise:.3f}", report.average_accuracy_pct])
    checks = {
        "noiseless_near_perfect": data["0.0"] >= 98.0,
        "accuracy_degrades_with_noise": data["0.1"] < data["0.0"],
        "paper_noise_band_accuracy": data["0.025"] >= 90.0,
    }
    return ExperimentResult(
        "ablation_noise",
        "Verification accuracy vs measurement noise",
        render_table(["noise sigma", "avg accuracy %"], rows,
                     title="Ablation: Table 3 accuracy vs RAPL noise"),
        data, checks,
    )


ABLATIONS = {
    "ablation_prefetcher": ablation_prefetcher,
    "ablation_instruction_mix": ablation_instruction_mix,
    "ablation_cache_scale": ablation_cache_scale,
    "ablation_noise": ablation_noise,
}
