"""Experiment registry: one callable per paper table/figure, plus
ablations of the reproduction's own design choices."""

from repro.analysis.ablations import (
    ABLATIONS,
    ablation_cache_scale,
    ablation_instruction_mix,
    ablation_noise,
    ablation_prefetcher,
)
from repro.analysis.experiments import (
    EXPERIMENTS,
    PAPER_PSTATES,
    ExperimentResult,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    ext_nosql,
    ext_writes,
    fig13,
    sec5,
    tab01,
    tab02,
    tab03,
    tab05,
)
from repro.analysis.lab import ENGINE_ORDER, Lab, LabConfig, SWEEP_QUERIES
from repro.analysis.svg import experiment_to_svg, stacked_bar_svg

__all__ = [
    "ABLATIONS",
    "ablation_cache_scale",
    "ablation_instruction_mix",
    "ablation_noise",
    "ablation_prefetcher",
    "EXPERIMENTS",
    "PAPER_PSTATES",
    "ExperimentResult",
    "ext_nosql",
    "ext_writes",
    "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11", "fig13",
    "sec5", "tab01", "tab02", "tab03", "tab05",
    "ENGINE_ORDER", "Lab", "LabConfig", "SWEEP_QUERIES",
    "experiment_to_svg", "stacked_bar_svg",
]
