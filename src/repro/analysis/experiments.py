"""One callable per paper table/figure (the per-experiment index of
DESIGN.md §4).

Each function takes a :class:`~repro.analysis.lab.Lab` and returns an
:class:`ExperimentResult` whose ``text`` is the regenerated table/series
and whose ``data``/``checks`` carry the structured values and the shape
assertions from DESIGN.md §5 — the benchmark harness prints the former
and the tests assert the latter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.lab import ENGINE_ORDER, Lab, SWEEP_QUERIES
from repro.core.accuracy import verify
from repro.core.breakdown import price_counters
from repro.core.model import EnergyBreakdown, sum_breakdowns
from repro.core.report import (
    render_breakdown_rows,
    render_delta_e,
    render_microbench_behaviour,
    render_table,
    render_verification,
)
from repro.micro.runner import RuntimeConfig, run_microbenchmark
from repro.tcm.poc import run_poc
from repro.workloads.basic_ops import BASIC_OPERATIONS, run_basic_operation
from repro.workloads.cpu2006 import CPU2006_WORKLOADS, run_kernel
from repro.workloads.tpch import ALL_QUERY_NUMBERS, run_query

#: The paper's three Table 2 / Figure 11 P-states.
PAPER_PSTATES = (36, 24, 12)


@dataclass
class ExperimentResult:
    """A regenerated table/figure plus its shape checks."""

    experiment_id: str
    title: str
    text: str
    data: dict
    checks: dict = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def failed_checks(self) -> list[str]:
        return [name for name, ok in self.checks.items() if not ok]


# ------------------------------------------------------------------ Table 1

def tab01(lab: Optional[Lab] = None) -> ExperimentResult:
    """Table 1: runtime behaviour of the micro-benchmarks."""
    lab = lab or Lab()
    cal = lab.calibration()
    results = cal.results
    data = {
        name: {
            "bli_pct": r.bli_pct,
            "ipc": r.ipc,
            "l1d_miss_pct": r.l1d_miss_pct,
            "l2_miss_pct": r.l2_miss_pct,
            "l3_miss_pct": r.l3_miss_pct,
        }
        for name, r in results.items()
    }
    checks = {
        "array_ipc_near_2": 1.7 <= data["B_L1D_array"]["ipc"] <= 2.1,
        "list_ipc_near_quarter": 0.2 <= data["B_L1D_list"]["ipc"] <= 0.3,
        "mem_ipc_tiny": data["B_mem"]["ipc"] < 0.05,
        "store_ipc_near_1": 0.9 <= data["B_Reg2L1D"]["ipc"] <= 1.1,
        "nop_ipc_near_4": 3.5 <= data["B_nop"]["ipc"] <= 4.1,
        "bli_high": all(v["bli_pct"] > 90 for v in data.values()),
        "l1d_list_stays_in_l1": data["B_L1D_list"]["l1d_miss_pct"] < 1.0,
        "l2_chain_misses_l1": data["B_L2"]["l1d_miss_pct"] > 95.0,
        "mem_chain_misses_l3": data["B_mem"]["l3_miss_pct"] > 90.0,
    }
    return ExperimentResult(
        "tab01", "Runtime behaviors of micro-benchmarks",
        render_microbench_behaviour(results), data, checks,
    )


# ------------------------------------------------------------------ Table 2

def tab02(lab: Optional[Lab] = None,
          pstates: tuple = PAPER_PSTATES) -> ExperimentResult:
    """Table 2: dE_m at P-states 36 / 24 / 12."""
    lab = lab or Lab()
    per_pstate = {
        p: lab.calibration(p).delta_e.nanojoules() for p in pstates
    }
    hi, mid, lo = pstates
    de_hi, de_lo = per_pstate[hi], per_pstate[lo]
    checks = {
        # strict ordering at the reference P-state
        "order_l1d_lt_store": de_hi["dE_L1D"] < de_hi["dE_Reg2L1D"],
        "order_store_lt_l2": de_hi["dE_Reg2L1D"] < de_hi["dE_L2"],
        "order_l2_lt_l3": de_hi["dE_L2"] < de_hi["dE_L3"],
        "order_l3_ll_mem": de_hi["dE_L3"] * 5 < de_hi["dE_mem"],
        # voltage scaling: L1D drops hard, mem barely (Table 2 pattern)
        "l1d_drops_hard": de_lo["dE_L1D"] < de_hi["dE_L1D"] * 0.6,
        "mem_barely_drops": de_lo["dE_mem"] > de_hi["dE_mem"] * 0.85,
        # monotone in P-state for the core-located operations
        "l1d_monotone": (de_hi["dE_L1D"] > per_pstate[mid]["dE_L1D"]
                         > de_lo["dE_L1D"]),
        "stall_monotone": (de_hi["dE_stall"] > per_pstate[mid]["dE_stall"]
                           > de_lo["dE_stall"]),
    }
    return ExperimentResult(
        "tab02", "Energy cost of micro-operations per P-state",
        render_delta_e(per_pstate),
        {str(p): v for p, v in per_pstate.items()},
        checks,
    )


# ------------------------------------------------------------------ Table 3

def tab03(lab: Optional[Lab] = None) -> ExperimentResult:
    """Table 3: verification accuracy of dE_m (paper avg 93.47%)."""
    lab = lab or Lab()
    cal = lab.calibration()
    report = verify(lab.machine, cal.delta_e, background=cal.background)
    data = {
        row.name: {"measured_j": row.measured_j, "estimated_j": row.estimated_j,
                   "accuracy_pct": row.accuracy_pct}
        for row in report.rows
    }
    data["average_accuracy_pct"] = report.average_accuracy_pct
    checks = {
        "average_accuracy_ge_90": report.average_accuracy_pct >= 90.0,
        "every_row_ge_80": all(r.accuracy_pct >= 80.0 for r in report.rows),
        "covers_7_benchmarks": len(report.rows) == 7,
    }
    return ExperimentResult(
        "tab03", "Verification accuracy of dE_m",
        render_verification(report), data, checks,
    )


# ------------------------------------------------------------------ Figure 5

def fig05(lab: Optional[Lab] = None,
          queries: tuple = ALL_QUERY_NUMBERS,
          runs_per_query: int = 3) -> ExperimentResult:
    """Figure 5: query-count distribution over %P-state-36 residency.

    EIST is on and each query starts from an idle machine (the governor
    has ramped down between statements, like a real interactive
    session); the paper then samples the runtime P-state while the
    query repeats.  Long queries spend almost all their time at the top
    P-state once the governor ramps up; short ones finish at lower
    states — producing the paper's distribution with a dominant 100%
    bucket and a spread below it.

    The governor epoch is scaled down with the queries (the paper
    samples 100 ms epochs against multi-second queries; the simulated
    queries are milliseconds long).
    """
    from repro.sim.dvfs import EistGovernor

    lab = lab or Lab()
    machine = lab.machine
    top = machine.config.pstates.highest
    buckets = (20, 40, 60, 80, 100)
    histogram = {engine: {b: 0 for b in buckets} for engine in ENGINE_ORDER}
    fractions = {engine: {} for engine in ENGINE_ORDER}
    governor = EistGovernor(table=machine.config.pstates,
                            epoch_seconds=0.0004)
    for engine in ENGINE_ORDER:
        db = lab.database(engine)
        for number in queries:
            run_query(db, number)  # warm caches (steady state)
            machine.enable_eist(governor)
            machine.idle(governor.epoch_seconds * 50)  # session think time
            machine.settle()
            machine.residency.reset()
            for _ in range(runs_per_query):
                run_query(db, number)
            machine.settle()
            machine.disable_eist()
            busy = machine.residency
            frac = 100.0 * busy.fraction_at(top)
            fractions[engine][number] = frac
            for bucket in buckets:
                if frac <= bucket + 1e-9:
                    histogram[engine][bucket] += 1
                    break
    rows = [
        [f"<= {b}%"] + [histogram[e][b] for e in ENGINE_ORDER]
        for b in buckets
    ]
    text = render_table(
        ["%P-state-36 bucket"] + list(ENGINE_ORDER), rows,
        title="Figure 5: query count by top-P-state residency (EIST on)",
    )
    top_bucket_counts = {e: histogram[e][100] for e in ENGINE_ORDER}
    checks = {
        # Most queries lean on the top P-state (the paper's finding).
        "top_bucket_dominates": all(
            top_bucket_counts[e] >= len(queries) // 2 for e in ENGINE_ORDER
        ),
        "some_spread_exists": any(
            sum(h[b] for b in buckets[:-1]) > 0 for h in histogram.values()
        ),
    }
    return ExperimentResult(
        "fig05", "P-state residency distribution",
        text, {"histogram": histogram, "fractions": fractions}, checks,
    )


# ------------------------------------------------------------------ Figure 6

def fig06(lab: Optional[Lab] = None) -> ExperimentResult:
    """Figure 6: Active-energy breakdown of the 7 basic operations."""
    lab = lab or Lab()
    data: dict = {}
    texts = []
    for engine in ENGINE_ORDER:
        db = lab.database(engine)
        breakdowns = {}
        for op in BASIC_OPERATIONS:
            profile = lab.profile_callable(
                f"{engine}/{op}", lambda op=op: run_basic_operation(db, op)
            )
            breakdowns[op] = profile.breakdown
        data[engine] = {
            op: b.shares_pct() | {
                "l1d_share_pct": b.l1d_share_pct,
                "movement_share_pct": b.data_movement_share_pct,
            }
            for op, b in breakdowns.items()
        }
        texts.append(render_breakdown_rows(
            breakdowns, f"Figure 6 — basic operations ({engine})"
        ))
    avg = {
        engine: sum(v["l1d_share_pct"] for v in ops.values()) / len(ops)
        for engine, ops in data.items()
    }
    checks = {
        # The headline: L1D load/store is the bottleneck, 39-67%.
        "l1d_share_in_paper_band": all(
            30.0 <= share <= 75.0 for share in avg.values()
        ),
        "sqlite_highest": avg["sqlite"] >= max(avg["postgresql"], avg["mysql"]),
        "mysql_highest_other": all(
            _avg_component(data["mysql"], "E_other")
            >= _avg_component(data[e], "E_other")
            for e in ("postgresql", "sqlite")
        ),
        "index_scan_stalls_more": all(
            data[e]["index_scan"]["E_stall"] >= data[e]["table_scan"]["E_stall"]
            for e in ENGINE_ORDER
        ),
    }
    return ExperimentResult(
        "fig06", "Breakdown of basic query operations",
        "\n\n".join(texts), data, checks,
    )


def _avg_component(per_op: dict, component: str) -> float:
    return sum(v[component] for v in per_op.values()) / len(per_op)


# ------------------------------------------------------------------ Figure 7

def fig07(lab: Optional[Lab] = None,
          queries: tuple = ALL_QUERY_NUMBERS) -> ExperimentResult:
    """Figure 7: breakdown of the TPC-H queries per engine."""
    lab = lab or Lab()
    data: dict = {}
    texts = []
    for engine in ENGINE_ORDER:
        breakdowns = {}
        for number in queries:
            profile = lab.profile_query(engine, number)
            breakdowns[f"Q{number}"] = profile.breakdown
        data[engine] = {
            name: b.shares_pct() | {"l1d_share_pct": b.l1d_share_pct,
                                    "movement_share_pct": b.data_movement_share_pct}
            for name, b in breakdowns.items()
        }
        texts.append(render_breakdown_rows(
            breakdowns, f"Figure 7 — TPC-H ({engine})"
        ))
    avg_l1d = {
        e: sum(v["l1d_share_pct"] for v in qs.values()) / len(qs)
        for e, qs in data.items()
    }
    avg_movement = {
        e: sum(v["movement_share_pct"] for v in qs.values()) / len(qs)
        for e, qs in data.items()
    }
    share_above_40 = sum(
        1 for qs in data.values() for v in qs.values()
        if v["l1d_share_pct"] > 40.0
    ) / max(1, sum(len(qs) for qs in data.values()))
    checks = {
        "l1d_share_band": all(30.0 <= s <= 75.0 for s in avg_l1d.values()),
        "sqlite_highest": avg_l1d["sqlite"] >= max(avg_l1d["postgresql"],
                                                   avg_l1d["mysql"]),
        "movement_majority": all(s >= 50.0 for s in avg_movement.values()),
        # Paper: 76% of queries have L1D share > 40%.
        "most_queries_above_40pct": share_above_40 >= 0.5,
    }
    return ExperimentResult(
        "fig07", "Breakdown of TPC-H queries",
        "\n\n".join(texts),
        data | {"avg_l1d_share": avg_l1d, "avg_movement_share": avg_movement},
        checks,
    )


# --------------------------------------------------------------- Figures 8/9

def _average_query_breakdown(lab: Lab, engine: str, setting: str, tier: str,
                             queries: tuple) -> EnergyBreakdown:
    parts = []
    for number in queries:
        profile = lab.profile_query(engine, number, setting=setting, tier=tier)
        parts.append(profile.breakdown)
    return sum_breakdowns(parts)


def fig08(lab: Optional[Lab] = None,
          tiers: tuple = ("100MB", "500MB", "1GB"),
          queries: tuple = SWEEP_QUERIES) -> ExperimentResult:
    """Figure 8: impact of data size on the average TPC-H breakdown."""
    lab = lab or Lab()
    breakdowns = {}
    for engine in ENGINE_ORDER:
        for tier in tiers:
            breakdowns[f"{engine}-{tier}"] = _average_query_breakdown(
                lab, engine, lab.config.setting, tier, queries
            )
    data = {
        name: b.shares_pct() | {"l1d_share_pct": b.l1d_share_pct}
        for name, b in breakdowns.items()
    }
    checks = _invariance_checks(data, ENGINE_ORDER, tiers)
    return ExperimentResult(
        "fig08", "Impact of data size",
        render_breakdown_rows(breakdowns, "Figure 8 — data size sweep"),
        data, checks,
    )


def fig09(lab: Optional[Lab] = None,
          settings: tuple = ("small", "baseline", "large"),
          queries: tuple = SWEEP_QUERIES) -> ExperimentResult:
    """Figure 9: impact of the Table 4 knob settings."""
    lab = lab or Lab()
    breakdowns = {}
    for engine in ENGINE_ORDER:
        for setting in settings:
            breakdowns[f"{engine}-{setting}"] = _average_query_breakdown(
                lab, engine, setting, lab.config.tier, queries
            )
    data = {
        name: b.shares_pct() | {"l1d_share_pct": b.l1d_share_pct}
        for name, b in breakdowns.items()
    }
    checks = _invariance_checks(data, ENGINE_ORDER, settings)
    return ExperimentResult(
        "fig09", "Impact of database knob settings",
        render_breakdown_rows(breakdowns, "Figure 9 — knob setting sweep"),
        data, checks,
    )


def _invariance_checks(data: dict, engines: tuple, variants: tuple) -> dict:
    """Figures 8/9/11's finding: the distribution barely moves."""
    checks = {}
    for engine in engines:
        shares = [data[f"{engine}-{v}"]["l1d_share_pct"] for v in variants]
        checks[f"{engine}_l1d_share_stable"] = max(shares) - min(shares) <= 15.0
        checks[f"{engine}_l1d_share_dominant"] = min(shares) >= 30.0
    return checks


# ----------------------------------------------------------------- Figure 10

def fig10(lab: Optional[Lab] = None, ops: int = 120_000) -> ExperimentResult:
    """Figure 10: CPU2006-like kernels — the contrast case."""
    lab = lab or Lab()
    breakdowns = {}
    for name in CPU2006_WORKLOADS:
        profile = lab.profile_callable(
            f"cpu2006/{name}",
            lambda name=name: run_kernel(lab.machine, name, ops),
        )
        breakdowns[name] = profile.breakdown
    data = {
        name: b.shares_pct() | {"l1d_share_pct": b.l1d_share_pct}
        for name, b in breakdowns.items()
    }
    shares = {name: v["l1d_share_pct"] for name, v in data.items()}
    below_40 = sum(1 for s in shares.values() if s < 40.0)
    checks = {
        # Paper: only ~11% of CPU2006 exceeds 40% L1D share.
        "mostly_below_40pct": below_40 >= len(shares) - 2,
        "mcf_extreme_low": shares["mcf"] <= 12.0,
        "libquantum_low": shares["libquantum"] <= 20.0,
        "diverse_profiles": max(shares.values()) - min(shares.values()) >= 20.0,
    }
    return ExperimentResult(
        "fig10", "Breakdown of CPU2006-like workloads",
        render_breakdown_rows(breakdowns, "Figure 10 — CPU2006 contrast"),
        data, checks,
    )


# ----------------------------------------------------------------- Figure 11

def fig11(lab: Optional[Lab] = None,
          pstates: tuple = PAPER_PSTATES,
          queries: tuple = SWEEP_QUERIES) -> ExperimentResult:
    """Figure 11: impact of the P-state on the breakdown (and E_active)."""
    lab = lab or Lab()
    breakdowns = {}
    actives = {}
    for engine in ENGINE_ORDER:
        for pstate in pstates:
            parts = [
                lab.profile_query(engine, n, pstate=pstate).breakdown
                for n in queries
            ]
            total = sum_breakdowns(parts)
            breakdowns[f"{engine}-P{pstate}"] = total
            actives[(engine, pstate)] = total.active_energy_j
    data = {
        name: b.shares_pct() | {"l1d_share_pct": b.l1d_share_pct}
        for name, b in breakdowns.items()
    }
    hi, mid, lo = pstates
    reduction_mid = {
        e: 100.0 * (1 - actives[(e, mid)] / actives[(e, hi)])
        for e in ENGINE_ORDER
    }
    reduction_lo = {
        e: 100.0 * (1 - actives[(e, lo)] / actives[(e, hi)])
        for e in ENGINE_ORDER
    }
    checks = _invariance_checks(
        data, ENGINE_ORDER, tuple(f"P{p}" for p in pstates)
    )
    # Paper: E_active drops 32%±2% at P24 and 51%±1% at P12.
    checks["eactive_drops_at_mid"] = all(
        15.0 <= r <= 45.0 for r in reduction_mid.values()
    )
    checks["eactive_drops_more_at_lo"] = all(
        reduction_lo[e] > reduction_mid[e] for e in ENGINE_ORDER
    )
    data["eactive_reduction_pct"] = {
        f"P{mid}": reduction_mid, f"P{lo}": reduction_lo,
    }
    return ExperimentResult(
        "fig11", "Impact of CPU frequency and voltage",
        render_breakdown_rows(breakdowns, "Figure 11 — P-state sweep")
        + "\n\nE_active reduction vs P36: "
        + ", ".join(
            f"{e}: P{mid} -{reduction_mid[e]:.0f}% / P{lo} -{reduction_lo[e]:.0f}%"
            for e in ENGINE_ORDER
        ),
        data, checks,
    )


# ------------------------------------------------------------------ Table 5

def tab05(lab: Optional[Lab] = None,
          pstates: tuple = PAPER_PSTATES) -> ExperimentResult:
    """Table 5: B_mem's energy bottleneck across P-states.

    The stall energy falls ultra-linearly with the P-state while the
    elapsed time barely moves — the §5 memory-bound opportunity.
    """
    lab = lab or Lab()
    machine = lab.machine
    rows = []
    data = {}
    for pstate in pstates:
        cal = lab.calibration(pstate)
        result = run_microbenchmark(
            machine, "B_mem", background=cal.background,
            runtime=RuntimeConfig(pstate=pstate),
        )
        b = price_counters(
            result.measurement.counters, cal.delta_e,
            result.measurement.active_energy_j,
        )
        shares = b.shares_pct()
        data[str(pstate)] = {
            "e_mem_j": b.e_mem, "e_stall_j": b.e_stall,
            "e_active_j": b.active_energy_j,
            "mem_pct": shares["E_mem"], "stall_pct": shares["E_stall"],
            "busy_s": result.measurement.busy_s,
        }
        rows.append([
            f"P-state {pstate}", b.e_mem, shares["E_mem"],
            b.e_stall, shares["E_stall"], b.active_energy_j,
            result.measurement.busy_s,
        ])
    text = render_table(
        ["", "E_mem (J)", "E_mem %", "E_stall (J)", "E_stall %",
         "E_active (J)", "busy (s)"],
        rows, title="Table 5: B_mem bottleneck vs P-state",
    )
    hi, mid, lo = (data[str(p)] for p in pstates)
    perf_loss_mid = (mid["busy_s"] - hi["busy_s"]) / hi["busy_s"] * 100.0
    saving_mid = (1 - mid["e_active_j"] / hi["e_active_j"]) * 100.0
    data["perf_loss_p24_pct"] = perf_loss_mid
    data["eactive_saving_p24_pct"] = saving_mid
    checks = {
        "stall_dominates_at_top": hi["stall_pct"] >= 60.0,
        "stall_share_falls": hi["stall_pct"] > mid["stall_pct"] > lo["stall_pct"],
        "mem_share_rises": lo["mem_pct"] > hi["mem_pct"] * 1.5,
        # Paper: 7% perf loss buys 46% E_active saving at P24.
        "small_perf_loss": perf_loss_mid <= 20.0,
        "large_energy_saving": saving_mid >= 30.0,
    }
    return ExperimentResult(
        "tab05", "Memory-bound energy bottleneck vs P-state", text, data, checks,
    )


# ----------------------------------------------------------------- Figure 13

def fig13(lab: Optional[Lab] = None,
          queries: tuple = ALL_QUERY_NUMBERS) -> ExperimentResult:
    """Figure 13: the DTCM proof-of-concept on the ARM preset."""
    seed = lab.config.seed if lab is not None else 0
    poc = run_poc(queries=queries, seed=seed)
    rows = [
        [f"Q{c.number}", c.energy_saving_pct, c.perf_improvement_pct]
        for c in poc.comparisons
    ]
    rows.append(["average", poc.average_energy_saving_pct,
                 poc.average_perf_improvement_pct])
    text = render_table(
        ["Query", "Energy saving %", "Perf improvement %"], rows,
        title=(
            "Figure 13: DTCM co-design on ARM1176JZF-S "
            f"(peak saving {poc.peak_saving_pct:.1f}%, achieved "
            f"{poc.fraction_of_peak_pct:.0f}% of peak)"
        ),
    )
    data = {
        "per_query": {
            c.number: {"energy_saving_pct": c.energy_saving_pct,
                       "perf_improvement_pct": c.perf_improvement_pct}
            for c in poc.comparisons
        },
        "peak_saving_pct": poc.peak_saving_pct,
        "average_energy_saving_pct": poc.average_energy_saving_pct,
        "average_perf_improvement_pct": poc.average_perf_improvement_pct,
        "fraction_of_peak_pct": poc.fraction_of_peak_pct,
        "queries_improved_pct": poc.queries_improved_pct,
    }
    checks = {
        "peak_near_10pct": 8.0 <= poc.peak_saving_pct <= 12.0,
        "avg_saving_positive": poc.average_energy_saving_pct > 3.0,
        "achieves_majority_of_peak": poc.fraction_of_peak_pct >= 40.0,
        "no_energy_regression": all(
            c.energy_saving_pct > -1.0 for c in poc.comparisons
        ),
        "perf_improves_on_average": poc.average_perf_improvement_pct > 0.0,
        "most_queries_improve": poc.queries_improved_pct >= 50.0,
    }
    return ExperimentResult(
        "fig13", "DTCM proof-of-concept", text, data, checks,
    )


# ----------------------------------------------------------------- Section 5

def sec5(lab: Optional[Lab] = None, tier: str = "500MB") -> ExperimentResult:
    """§5's DVFS trade-off: index scan vs table scan at P36 -> P24.

    The paper: PostgreSQL's index scan trades 20% performance for 27%
    E_active (efficiency +10%), its table scan trades 30% for 28%
    (efficiency -3%) — so a customised DVFS policy should downclock
    memory-bound (index-intensive) plans only.
    """
    lab = lab or Lab()
    data = {}
    for op in ("table_scan", "index_scan"):
        per_pstate = {}
        for pstate in (36, 24):
            db = lab.database("postgresql", tier=tier)
            profile = lab.profile_callable(
                f"pg/{op}/P{pstate}",
                lambda op=op, db=db: run_basic_operation(db, op),
                pstate=pstate,
            )
            per_pstate[pstate] = {
                "busy_s": profile.busy_s,
                "e_active_j": profile.breakdown.active_energy_j,
            }
        hi, mid = per_pstate[36], per_pstate[24]
        perf_loss = (mid["busy_s"] - hi["busy_s"]) / hi["busy_s"] * 100.0
        saving = (1 - mid["e_active_j"] / hi["e_active_j"]) * 100.0
        eff_hi = 1.0 / (hi["busy_s"] * hi["e_active_j"])
        eff_mid = 1.0 / (mid["busy_s"] * mid["e_active_j"])
        data[op] = {
            "perf_loss_pct": perf_loss,
            "eactive_saving_pct": saving,
            "efficiency_change_pct": 100.0 * (eff_mid / eff_hi - 1.0),
        }
    rows = [
        [op, v["perf_loss_pct"], v["eactive_saving_pct"],
         v["efficiency_change_pct"]]
        for op, v in data.items()
    ]
    text = render_table(
        ["PostgreSQL scan", "perf loss % (P36->24)", "E_active saving %",
         "energy-efficiency change %"],
        rows, title="Section 5: DVFS trade-off, index vs table scan",
    )
    checks = {
        "index_scan_cheaper_downclock": (
            data["index_scan"]["perf_loss_pct"]
            < data["table_scan"]["perf_loss_pct"]
        ),
        "index_scan_efficiency_wins": (
            data["index_scan"]["efficiency_change_pct"]
            > data["table_scan"]["efficiency_change_pct"]
        ),
        "both_save_energy": all(
            v["eactive_saving_pct"] > 10.0 for v in data.values()
        ),
    }
    return ExperimentResult(
        "sec5", "Memory-bound DVFS trade-off", text, data, checks,
    )


# ------------------------------------------------------- §7 extension

def ext_nosql(lab: Optional[Lab] = None, n_keys: int = 2000,
              ops: int = 1500) -> ExperimentResult:
    """§7's future work: the energy distribution of a NoSQL engine.

    Profiles an LSM key-value store (memtable + SSTables + bloom
    filters) under YCSB-style mixes with the same §2/§3 methodology, and
    contrasts it with the relational engines: point-lookup-heavy KV
    workloads are stall/L2/L3-bound (bloom probes and binary searches
    are pointer chases), so the relational L1D dominance does *not*
    carry over unchanged — while scan-heavy mixes move back toward it.
    """
    from repro.workloads.kvstore import build_store, run_ycsb

    lab = lab or Lab()
    machine = lab.machine
    store = build_store(machine, n_keys=n_keys)
    breakdowns = {}
    for workload in ("c", "a", "e"):
        fn = lambda workload=workload: run_ycsb(
            machine, store, workload, ops=ops, n_keys=n_keys
        )
        profile = lab.profile_callable(f"ycsb-{workload}", fn)
        breakdowns[f"ycsb-{workload}"] = profile.breakdown
    # A relational reference point measured identically.
    db = lab.database("sqlite")
    reference = lab.profile_callable(
        "sqlite/table_scan",
        lambda: run_basic_operation(db, "table_scan"),
    )
    breakdowns["sqlite-table-scan"] = reference.breakdown
    data = {
        name: b.shares_pct() | {"l1d_share_pct": b.l1d_share_pct}
        for name, b in breakdowns.items()
    }
    checks = {
        "kv_point_reads_stall_bound": (
            data["ycsb-c"]["E_stall"] > data["sqlite-table-scan"]["E_stall"]
        ),
        "kv_l1d_share_below_relational": (
            data["ycsb-c"]["l1d_share_pct"]
            < data["sqlite-table-scan"]["l1d_share_pct"]
        ),
        "scans_more_l1d_than_point_reads": (
            data["ycsb-e"]["l1d_share_pct"] > data["ycsb-c"]["l1d_share_pct"]
        ),
    }
    return ExperimentResult(
        "ext_nosql", "NoSQL (LSM) energy distribution — §7 future work",
        render_breakdown_rows(breakdowns,
                              "Extension: YCSB on an LSM store vs SQLite"),
        data, checks,
    )


def ext_writes(lab: Optional[Lab] = None, n_rows: int = 1200) -> ExperimentResult:
    """§2.3's deferred question: where does *write* energy go?

    The paper restricts itself to read queries and notes that writes
    "may involve more micro-operations about writing".  This experiment
    takes the step: the same breakdown applied to INSERT-, UPDATE-, and
    DELETE-heavy workloads on each engine, contrasted with a read query.
    Expectation: the store share (E_Reg2L1D) rises and write-backs of
    dirty lines appear, but L1D load/store stays the bottleneck — the
    write path runs through the same interpreter and B-trees.
    """
    from repro.db.exprs import Col, Const
    from repro.db.types import Column, FLOAT, INT, Schema

    lab = lab or Lab()
    machine = lab.machine
    cal = lab.calibration()
    schema = Schema([Column("k", INT), Column("v", FLOAT), Column("g", INT)])
    breakdowns = {}
    writebacks = {}
    from repro.core.profiler import profile_workload
    from repro.db.engine import Database
    from repro.db.profiles import engine_profile

    for engine in ENGINE_ORDER:
        db = Database(machine, engine_profile(engine), name=f"w-{engine}")
        db.create_table(
            "t", schema,
            [(i, float(i), i % 7) for i in range(n_rows)],
            primary_key="k", indexes=["g"],
        )
        next_key = [n_rows]

        def insert_heavy():
            base = next_key[0]
            db.insert("t", [(base + i, float(i), i % 7)
                            for i in range(n_rows // 4)])
            next_key[0] = base + n_rows // 4

        def update_heavy():
            db.update("t", {"v": Col("v") + Const(1.0)},
                      Col("g") < Const(4))

        workloads = {"insert": insert_heavy, "update": update_heavy}
        for kind, fn in workloads.items():
            profile = profile_workload(
                machine, f"{engine}/{kind}", fn, cal.delta_e,
                background=cal.background, pstate=cal.pstate,
            )
            breakdowns[f"{engine}-{kind}"] = profile.breakdown
            writebacks[f"{engine}-{kind}"] = profile.counters.n_writeback
    data = {
        name: b.shares_pct() | {"l1d_share_pct": b.l1d_share_pct}
        for name, b in breakdowns.items()
    }
    data["writebacks"] = writebacks
    checks = {
        "writes_still_l1d_bound": all(
            v["l1d_share_pct"] > 30.0 for k, v in data.items()
            if k != "writebacks"
        ),
        "store_share_substantial": all(
            v["E_Reg2L1D"] > 15.0 for k, v in data.items()
            if k != "writebacks"
        ),
        "dirty_writebacks_appear": any(n > 0 for n in writebacks.values()),
    }
    return ExperimentResult(
        "ext_writes", "Write-query energy distribution — §2.3's open question",
        render_breakdown_rows(breakdowns,
                              "Extension: INSERT/UPDATE energy breakdown"),
        data, checks,
    )


#: Registry used by the benchmark harness and the README.
EXPERIMENTS = {
    "tab01": tab01,
    "tab02": tab02,
    "tab03": tab03,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "tab05": tab05,
    "fig13": fig13,
    "sec5": sec5,
    "ext_nosql": ext_nosql,
    "ext_writes": ext_writes,
}
