"""Dependency-free SVG renderer for the paper's stacked-bar figures.

The paper's Figures 6–11 are horizontal 100%-stacked bars of the eight
energy components.  This module renders the same form as standalone SVG
files, following a fixed visual contract:

* the eight components map to eight categorical hues in a **fixed slot
  order** (never cycled) from a CVD-validated palette (worst adjacent
  ΔE 24.2 under protanopia; three light slots sit below 3:1 contrast on
  the surface, so every figure ships a full legend and the experiment's
  text table is the accompanying table view);
* bars are 18px thick with a 2px surface gap between segments and a
  4px-rounded data end (square at the baseline);
* text — title, labels, axis, legend — wears ink tokens, never a series
  hue; each segment carries an SVG ``<title>`` (the native hover
  tooltip) with its component name and share;
* one selective direct label per bar: the headline L1D+store share.

Light-surface rendering only: these files are static artefacts for
reports, not themed UI.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.model import BREAKDOWN_COMPONENTS

#: Fixed component -> categorical-slot assignment (order is the CVD
#: safety mechanism; see module docstring).
PALETTE = {
    "E_L1D": "#2a78d6",      # blue
    "E_Reg2L1D": "#1baf7a",  # aqua
    "E_L2": "#eda100",       # yellow
    "E_L3": "#008300",       # green
    "E_mem": "#4a3aa7",      # violet
    "E_stall": "#e34948",    # red
    "E_pf": "#e87ba4",       # magenta
    "E_other": "#eb6834",    # orange
}

SURFACE = "#fcfcfb"
INK_PRIMARY = "#0b0b0b"
INK_SECONDARY = "#52514e"
GRID = "#e5e4e0"

_BAR_H = 18
_ROW_H = 26
_GAP = 2
_LABEL_W = 150
_PLOT_W = 520
_VALUE_W = 70
_LEGEND_H = 26
_TITLE_H = 30
_AXIS_H = 26
_FONT = ("font-family='system-ui, -apple-system, Segoe UI, Helvetica, Arial,"
         " sans-serif'")


def _esc(text: str) -> str:
    """XML-escape for text nodes AND single-quoted attribute values."""
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;")
            .replace("'", "&apos;"))


def _segment(x: float, y: float, width: float, color: str,
             tooltip: str, last: bool) -> str:
    """One stacked segment; the final segment gets a rounded data end."""
    if width <= 0.5:
        return ""
    title = f"<title>{_esc(tooltip)}</title>"
    if not last or width < 8:
        return (f"<rect x='{x:.1f}' y='{y:.1f}' width='{width:.1f}' "
                f"height='{_BAR_H}' fill='{color}'>{title}</rect>")
    # Rounded right corners only (square at the baseline side).
    r = 4.0
    x2 = x + width
    path = (f"M {x:.1f} {y:.1f} H {x2 - r:.1f} "
            f"Q {x2:.1f} {y:.1f} {x2:.1f} {y + r:.1f} "
            f"V {y + _BAR_H - r:.1f} "
            f"Q {x2:.1f} {y + _BAR_H:.1f} {x2 - r:.1f} {y + _BAR_H:.1f} "
            f"H {x:.1f} Z")
    return f"<path d='{path}' fill='{color}'>{title}</path>"


def stacked_bar_svg(
    rows: Sequence[tuple],
    title: str,
    subtitle: str = "",
    components: Sequence[str] = BREAKDOWN_COMPONENTS,
) -> str:
    """Render ``rows`` of ``(label, {component: percent})`` as an SVG.

    Percent dicts need not sum to 100; each bar is normalised to its own
    total (the figures plot shares of Active energy).
    """
    height = (_TITLE_H + (_TITLE_H // 2 if subtitle else 0) + _LEGEND_H
              + len(rows) * _ROW_H + _AXIS_H + 16)
    width = _LABEL_W + _PLOT_W + _VALUE_W + 24
    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' viewBox='0 0 {width} {height}' role='img' "
        f"aria-label='{_esc(title)}'>",
        f"<rect width='{width}' height='{height}' fill='{SURFACE}'/>",
        f"<text x='12' y='20' {_FONT} font-size='14' font-weight='600' "
        f"fill='{INK_PRIMARY}'>{_esc(title)}</text>",
    ]
    y0 = _TITLE_H
    if subtitle:
        parts.append(
            f"<text x='12' y='{y0 + 6}' {_FONT} font-size='11' "
            f"fill='{INK_SECONDARY}'>{_esc(subtitle)}</text>"
        )
        y0 += _TITLE_H // 2

    # Legend: swatch + label per component, ink text (identity never
    # rides on text color).
    legend_x = 12.0
    legend_y = y0 + 8
    for component in components:
        label = component.replace("E_", "")
        parts.append(
            f"<rect x='{legend_x:.1f}' y='{legend_y}' width='10' height='10' "
            f"rx='2' fill='{PALETTE[component]}'/>"
        )
        parts.append(
            f"<text x='{legend_x + 14:.1f}' y='{legend_y + 9}' {_FONT} "
            f"font-size='10' fill='{INK_SECONDARY}'>{_esc(label)}</text>"
        )
        legend_x += 14 + 7.5 * len(label) + 18
    y0 += _LEGEND_H + 8

    plot_x = _LABEL_W
    plot_bottom = y0 + len(rows) * _ROW_H
    # Recessive hairline gridlines at 0/20/.../100%.
    for tick in range(0, 101, 20):
        gx = plot_x + _PLOT_W * tick / 100.0
        parts.append(
            f"<line x1='{gx:.1f}' y1='{y0}' x2='{gx:.1f}' "
            f"y2='{plot_bottom}' stroke='{GRID}' stroke-width='1'/>"
        )
        parts.append(
            f"<text x='{gx:.1f}' y='{plot_bottom + 16}' {_FONT} "
            f"font-size='10' fill='{INK_SECONDARY}' "
            f"text-anchor='middle'>{tick}%</text>"
        )

    for row_index, (label, shares) in enumerate(rows):
        y = y0 + row_index * _ROW_H + (_ROW_H - _BAR_H) / 2
        parts.append(
            f"<text x='{_LABEL_W - 8}' y='{y + _BAR_H - 5}' {_FONT} "
            f"font-size='11' fill='{INK_PRIMARY}' "
            f"text-anchor='end'>{_esc(label)}</text>"
        )
        total = sum(max(0.0, float(shares.get(c, 0.0))) for c in components)
        if total <= 0:
            continue
        x = float(plot_x)
        present = [c for c in components
                   if float(shares.get(c, 0.0)) / total * _PLOT_W > 0.5]
        for component in components:
            share = max(0.0, float(shares.get(c := component, 0.0))) / total
            seg_w = share * _PLOT_W
            if seg_w <= 0.5:
                continue
            last = component == (present[-1] if present else component)
            draw_w = seg_w - (0 if last else _GAP)
            parts.append(_segment(
                x, y, max(0.5, draw_w), PALETTE[component],
                f"{component} — {share * 100:.1f}%", last,
            ))
            x += seg_w
        # Selective direct label: the headline L1D+store share.
        headline = (float(shares.get("E_L1D", 0.0))
                    + float(shares.get("E_Reg2L1D", 0.0))) / total * 100
        parts.append(
            f"<text x='{plot_x + _PLOT_W + 8}' y='{y + _BAR_H - 5}' {_FONT} "
            f"font-size='10' fill='{INK_SECONDARY}'>"
            f"L1D+st {headline:.0f}%</text>"
        )

    parts.append("</svg>")
    return "".join(parts)


def breakdown_rows_from_experiment(result) -> Optional[list]:
    """Extract ``(label, shares)`` rows from an ExperimentResult's data.

    Handles both flat ``{name: {E_L1D: ...}}`` and the per-engine nested
    ``{engine: {workload: {E_L1D: ...}}}`` layouts; returns None when the
    experiment is not breakdown-shaped (e.g. Table 2).
    """
    data = getattr(result, "data", None)
    if not isinstance(data, Mapping):
        return None
    rows: list = []
    for name, value in data.items():
        if not isinstance(value, Mapping):
            continue
        if "E_L1D" in value:
            rows.append((str(name), value))
        else:
            for inner_name, inner in value.items():
                if isinstance(inner, Mapping) and "E_L1D" in inner:
                    rows.append((f"{name}/{inner_name}", inner))
    return rows or None


def experiment_to_svg(result, subtitle: str = "") -> Optional[str]:
    """Render a breakdown-shaped experiment as SVG (None otherwise)."""
    rows = breakdown_rows_from_experiment(result)
    if rows is None:
        return None
    return stacked_bar_svg(
        rows, f"[{result.experiment_id}] {result.title}",
        subtitle or "share of Active energy per micro-operation class",
    )
