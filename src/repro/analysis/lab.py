"""Shared experiment infrastructure: machines, calibrations, databases.

Every table/figure function in :mod:`repro.analysis.experiments` takes a
:class:`Lab`, which memoises the expensive shared state:

* one Intel-preset machine (cache-scaled; see DESIGN.md §2),
* one calibration per P-state,
* one loaded database per (engine, knob setting, data tier).

The defaults (``scale=16``, 100MB tier) regenerate every experiment in
minutes on a laptop; pass a smaller ``scale`` and bigger tier for a
higher-fidelity run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import intel_i7_4790
from repro.core.calibration import CalibrationResult, calibrate
from repro.core.model import WorkloadProfile
from repro.core.profiler import profile_workload
from repro.db.engine import Database
from repro.db.profiles import BASELINE, engine_profile
from repro.sim.machine import Machine
from repro.workloads.tpch import TpchData, load_into, run_query

#: Engines in the paper's presentation order.
ENGINE_ORDER = ("postgresql", "sqlite", "mysql")

#: Representative query subset used by the sweep figures (8/9/11) to
#: keep multi-tier runs tractable; the full 22 remain available via
#: ``queries=ALL_QUERY_NUMBERS``.  The subset spans scan-heavy (1, 6),
#: join-heavy (3, 5, 10), aggregate-heavy (13, 18) and index-friendly
#: (12, 14) shapes.
SWEEP_QUERIES = (1, 3, 5, 6, 10, 12, 13, 14, 18)


@dataclass(frozen=True)
class LabConfig:
    """Scale knobs for one experiment session."""

    scale: int = 16
    tier: str = "100MB"
    setting: str = BASELINE
    seed: int = 0
    exec_mode: str = "batched"


class Lab:
    """Memoised machines, calibrations, and loaded databases."""

    def __init__(self, config: Optional[LabConfig] = None):
        self.config = config or LabConfig()
        self._machine: Optional[Machine] = None
        self._calibrations: dict[int, CalibrationResult] = {}
        self._databases: dict[tuple, Database] = {}
        self._datasets: dict[str, TpchData] = {}

    # ------------------------------------------------------------ building

    @property
    def machine(self) -> Machine:
        if self._machine is None:
            self._machine = Machine(
                intel_i7_4790(scale=self.config.scale), seed=self.config.seed,
                exec_mode=self.config.exec_mode,
            )
        return self._machine

    def calibration(self, pstate: Optional[int] = None) -> CalibrationResult:
        machine = self.machine
        key = machine.config.pstates.highest if pstate is None else pstate
        if key not in self._calibrations:
            self._calibrations[key] = calibrate(machine, pstate=key)
        return self._calibrations[key]

    def dataset(self, tier: Optional[str] = None) -> TpchData:
        name = tier or self.config.tier
        if name not in self._datasets:
            self._datasets[name] = TpchData(name, seed=20200330)
        return self._datasets[name]

    def database(self, engine: str, setting: Optional[str] = None,
                 tier: Optional[str] = None) -> Database:
        setting = setting or self.config.setting
        tier = tier or self.config.tier
        key = (engine, setting, tier)
        if key not in self._databases:
            profile = engine_profile(engine, setting)
            db = Database(self.machine, profile,
                          name=f"{engine}/{setting}/{tier}")
            load_into(db, self.dataset(tier))
            self._databases[key] = db
        return self._databases[key]

    # ------------------------------------------------------------ profiling

    def profile_callable(self, name: str, fn, pstate: Optional[int] = None,
                         warm: bool = True) -> WorkloadProfile:
        """Profile an arbitrary workload callable at a pinned P-state.

        The workload runs once as warm-up (the paper averages over many
        repeated runs, so the steady state is what gets measured) and
        once measured.
        """
        cal = self.calibration(pstate)
        machine = self.machine
        machine.disable_eist()
        return profile_workload(
            machine, name, fn, cal.delta_e,
            background=cal.background,
            pstate=cal.pstate,
            warmup=fn if warm else None,
        )

    def profile_query(self, engine: str, number: int,
                      setting: Optional[str] = None,
                      tier: Optional[str] = None,
                      pstate: Optional[int] = None) -> WorkloadProfile:
        """Profile one TPC-H query on one engine."""
        db = self.database(engine, setting, tier)
        return self.profile_callable(
            f"{engine}/Q{number}", lambda: run_query(db, number), pstate
        )
