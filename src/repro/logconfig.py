"""One place to configure logging for the whole package.

Every module in ``repro`` logs through ``logging.getLogger(__name__)``;
nothing configures handlers at import time (library etiquette).  The CLI
calls :func:`configure_logging` once, mapping ``-v`` flags to levels:

* default — WARNING (quiet),
* ``-v`` — INFO (progress: calibration stages, data loads, query runs),
* ``-vv`` — DEBUG (per-event detail: governor transitions, pool
  recycles, index builds).
"""

from __future__ import annotations

import logging

#: Format kept terse: the interesting part is the message, not the time.
_FORMAT = "%(levelname)s %(name)s: %(message)s"


def verbosity_to_level(verbosity: int) -> int:
    """Map a ``-v`` count to a :mod:`logging` level."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(verbosity: int = 0) -> None:
    """Install a stderr handler on the ``repro`` logger tree.

    Idempotent: calling again just adjusts the level (so tests and
    repeated CLI invocations in one process behave).  Only the
    ``repro`` hierarchy is touched — the root logger is left alone.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(verbosity_to_level(verbosity))
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
    logger.propagate = False
