"""One place to configure logging for the whole package.

Every module in ``repro`` logs through ``logging.getLogger(__name__)``;
nothing configures handlers at import time (library etiquette).  The CLI
calls :func:`configure_logging` once, mapping ``-v`` flags to levels:

* default — WARNING (quiet),
* ``-v`` — INFO (progress: calibration stages, data loads, query runs),
* ``-vv`` — DEBUG (per-event detail: governor transitions, pool
  recycles, index builds).
"""

from __future__ import annotations

import logging

#: Format kept terse: the interesting part is the message, not the time.
_FORMAT = "%(levelname)s %(name)s: %(message)s"

#: Attribute stamped on the handler this module installs, so repeated
#: configuration recognises its own handler no matter what else a host
#: application hung on the ``repro`` logger.
_OWNED_MARK = "_repro_logconfig_owned"


def verbosity_to_level(verbosity: int) -> int:
    """Map a ``-v`` count to a :mod:`logging` level."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(verbosity: int = 0) -> None:
    """Install a stderr handler on the ``repro`` logger tree.

    Idempotent: calling any number of times leaves exactly one handler
    owned by this module on the ``repro`` logger, whatever the call
    order — repeat calls just adjust the level, duplicate owned
    handlers (e.g. from a reloaded module) are collapsed, and foreign
    handlers added by a host application are left untouched.  Only the
    ``repro`` hierarchy is configured — the root logger is never.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(verbosity_to_level(verbosity))
    owned = [h for h in logger.handlers if getattr(h, _OWNED_MARK, False)]
    for extra in owned[1:]:
        logger.removeHandler(extra)
    if not owned and not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        setattr(handler, _OWNED_MARK, True)
        logger.addHandler(handler)
    logger.propagate = False


def reset_logging() -> None:
    """Remove the handler :func:`configure_logging` installed (if any).

    For tests and embedders that need a clean slate; foreign handlers
    stay, and the level is restored to NOTSET (inherit)."""
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, _OWNED_MARK, False):
            logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True
