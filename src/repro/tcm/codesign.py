"""§4.2's system-level co-design: placing SQLite's hot data in DTCM.

The paper partitions the ARM1176JZF-S's 32 KB DTCM three ways:

* **database buffer (16 KB)** — page-cache memory managed by SQLite;
  modelled as relocating the hottest clustered-tree leaf pages (small
  tables first, mirroring the paper's even split across the queried
  tables);
* **special variables (4 KB)** — the hot structures of
  ``sqlite3VdbeExec()`` (query plan, cursors, heap heads), which issue
  ~70% of all L1D loads; modelled as relocating the engine's state
  region (see :class:`repro.db.operators.base.ExecContext`);
* **B-tree top layers (12 KB)** — the root and upper levels of the
  tables' trees, divided evenly across the tables of the current query.

Applying the co-design mutates the database in place; a separate plain
database serves as the baseline in the Figure 13 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.db.engine import Database
from repro.db.table import ClusteredTable
from repro.sim.machine import Machine

DATABASE_BUFFER_BYTES = 16 * 1024
SPECIAL_VARIABLES_BYTES = 4 * 1024
BTREE_LAYER_BYTES = 12 * 1024


@dataclass
class CodesignReport:
    """What the three strategies actually placed."""

    state_bytes: int = 0
    btree_nodes_relocated: int = 0
    leaf_nodes_relocated: int = 0

    @property
    def total_nodes(self) -> int:
        return self.btree_nodes_relocated + self.leaf_nodes_relocated


def scale_budgets(machine: Machine) -> tuple[int, int, int]:
    """The three §4.2 budgets, scaled with the machine's DTCM size."""
    if machine.tcm is None:
        raise ConfigError(f"{machine.config.name} has no DTCM")
    total = machine.tcm.region.size
    scale = total / (32 * 1024)
    return (
        int(DATABASE_BUFFER_BYTES * scale),
        int(SPECIAL_VARIABLES_BYTES * scale),
        int(BTREE_LAYER_BYTES * scale),
    )


def apply_codesign(db: Database, machine: Machine) -> CodesignReport:
    """Apply the three DTCM placement strategies to ``db`` in place."""
    if machine.tcm is None:
        raise ConfigError(f"{machine.config.name} has no DTCM")
    buffer_budget, vars_budget, btree_budget = scale_budgets(machine)
    report = CodesignReport()

    # Strategy 2: special variables — the VdbeExec state region.
    state = machine.tcm.alloc(
        min(vars_budget, db.state_region.size), label="tcm/special-vars"
    )
    db.set_state_region(state)
    report.state_bytes = state.size

    # Strategy 3: B-tree top layers.  The paper divides the budget so
    # that "more B tree data of small tables are loaded into DTCM";
    # greedy smallest-table-first achieves exactly that: tiny tables
    # place their whole tree, big tables place their top levels until
    # the budget runs out.
    clustered = [
        t for t in db.catalog.tables()
        if isinstance(t.storage, ClusteredTable)
    ]
    budget_left = btree_budget
    for table in sorted(clustered, key=lambda t: t.n_rows):
        if budget_left <= 0:
            break
        tree = table.storage.tree
        moved = tree.relocate_top_levels(machine.tcm, budget_left)
        report.btree_nodes_relocated += moved
        budget_left -= moved * tree.node_bytes

    # Strategy 1: database buffer — hottest leaf pages, smallest tables
    # first (their leaves are the most frequently revisited per byte).
    spent = 0
    for table in sorted(clustered, key=lambda t: t.n_rows):
        tree = table.storage.tree
        for leaf in tree.levels()[-1]:
            if spent + tree.node_bytes > buffer_budget:
                break
            if leaf.region.base >= machine.tcm.region.base:
                continue  # already placed by strategy 3
            leaf.region = machine.tcm.alloc(
                tree.node_bytes, label="tcm/db-buffer"
            )
            report.leaf_nodes_relocated += 1
            spent += tree.node_bytes
        else:
            continue
        break
    return report
