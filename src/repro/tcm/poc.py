"""§4.3's proof-of-concept experiment (Figure 13).

Runs the 22 TPC-H queries on the ARM1176JZF-S preset twice — a plain
SQLite-like database and a DTCM-co-designed one — and reports per-query
energy saving and performance improvement, plus the DTCM peak saving
measured by ``B_DTCM_array`` vs ``B_L1D_array`` (the paper's 10%).

The paper uses 10 MB of TPC-H data with the *small* knob setting and an
external power meter; here both databases run on one simulated machine
and the measurement layer plays the power meter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import arm1176jzf_s
from repro.db.engine import Database
from repro.db.profiles import SMALL, sqlite_like
from repro.micro.measurement import measure_background, run_measured
from repro.micro.runner import RuntimeConfig, run_microbenchmark
from repro.sim.machine import Machine
from repro.tcm.codesign import CodesignReport, apply_codesign
from repro.workloads.tpch import ALL_QUERY_NUMBERS, TpchData, load_into, run_query


@dataclass(frozen=True)
class QueryComparison:
    """One Figure 13 bar pair."""

    number: int
    energy_plain_j: float
    energy_tcm_j: float
    time_plain_s: float
    time_tcm_s: float

    @property
    def energy_saving_pct(self) -> float:
        if self.energy_plain_j <= 0:
            return 0.0
        return 100.0 * (1.0 - self.energy_tcm_j / self.energy_plain_j)

    @property
    def perf_improvement_pct(self) -> float:
        if self.time_plain_s <= 0:
            return 0.0
        return 100.0 * (1.0 - self.time_tcm_s / self.time_plain_s)


@dataclass
class PocResult:
    """The full Figure 13 dataset."""

    comparisons: list[QueryComparison]
    peak_saving_pct: float
    codesign: CodesignReport

    @property
    def average_energy_saving_pct(self) -> float:
        if not self.comparisons:
            return 0.0
        return sum(c.energy_saving_pct for c in self.comparisons) / len(
            self.comparisons
        )

    @property
    def average_perf_improvement_pct(self) -> float:
        if not self.comparisons:
            return 0.0
        return sum(c.perf_improvement_pct for c in self.comparisons) / len(
            self.comparisons
        )

    @property
    def fraction_of_peak_pct(self) -> float:
        """The paper's headline: 60% of the peak saving is achieved."""
        if self.peak_saving_pct <= 0:
            return 0.0
        return 100.0 * self.average_energy_saving_pct / self.peak_saving_pct

    @property
    def queries_improved_pct(self) -> float:
        """Share of queries whose performance improved (paper: 64%)."""
        if not self.comparisons:
            return 0.0
        improved = sum(1 for c in self.comparisons if c.perf_improvement_pct > 0)
        return 100.0 * improved / len(self.comparisons)


def measure_peak_saving(machine: Machine, seed: int = 1234) -> float:
    """B_DTCM_array vs B_L1D_array: the DTCM peak energy saving (§4.3)."""
    runtime = RuntimeConfig(repeats=5)
    background = measure_background(machine)
    plain = run_microbenchmark(machine, "B_L1D_array", background, runtime,
                               seed=seed)
    dtcm = run_microbenchmark(machine, "B_DTCM_array", background, runtime,
                              seed=seed)
    per_load_plain = plain.active_energy_j / max(1, plain.ops_measured)
    per_load_dtcm = dtcm.active_energy_j / max(1, dtcm.ops_measured)
    if per_load_plain <= 0:
        return 0.0
    return 100.0 * (1.0 - per_load_dtcm / per_load_plain)


def run_poc(
    tier: str = "10MB",
    queries: tuple = ALL_QUERY_NUMBERS,
    seed: int = 0,
    machine: Optional[Machine] = None,
    repeats: int = 3,
) -> PocResult:
    """Run the full §4.3 experiment and return the Figure 13 dataset."""
    if machine is None:
        machine = Machine(arm1176jzf_s(), seed=seed)
    peak = measure_peak_saving(machine)

    data = TpchData(tier)
    profile = sqlite_like(SMALL)
    db_plain = Database(machine, profile, name="sqlite-plain")
    load_into(db_plain, data)
    db_tcm = Database(machine, profile, name="sqlite-dtcm")
    load_into(db_tcm, data)
    machine.tcm.free_all()
    codesign = apply_codesign(db_tcm, machine)

    background = measure_background(machine)
    comparisons = []
    for number in queries:
        pair = []
        for db in (db_plain, db_tcm):
            run_query(db, number)  # warm-up
            energies = []
            times = []
            for _ in range(max(1, repeats)):
                window = run_measured(
                    machine, lambda: run_query(db, number), background
                )
                energies.append(window.active_energy_j)
                times.append(window.busy_s)
            pair.append((sum(energies) / len(energies),
                         sum(times) / len(times)))
        comparisons.append(
            QueryComparison(
                number=number,
                energy_plain_j=pair[0][0],
                energy_tcm_j=pair[1][0],
                time_plain_s=pair[0][1],
                time_tcm_s=pair[1][1],
            )
        )
    return PocResult(comparisons=comparisons, peak_saving_pct=peak,
                     codesign=codesign)
