"""The section-4 proof-of-concept: DTCM-backed energy-efficient SQLite."""

from repro.tcm.codesign import (
    BTREE_LAYER_BYTES,
    DATABASE_BUFFER_BYTES,
    SPECIAL_VARIABLES_BYTES,
    CodesignReport,
    apply_codesign,
    scale_budgets,
)
from repro.tcm.poc import (
    PocResult,
    QueryComparison,
    measure_peak_saving,
    run_poc,
)

__all__ = [
    "BTREE_LAYER_BYTES",
    "DATABASE_BUFFER_BYTES",
    "SPECIAL_VARIABLES_BYTES",
    "CodesignReport",
    "apply_codesign",
    "scale_budgets",
    "PocResult",
    "QueryComparison",
    "measure_peak_saving",
    "run_poc",
]
