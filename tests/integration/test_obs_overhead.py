"""Telemetry overhead gate: sampling must be (near) free.

The tentpole claim of the sampling aggregator is that always-on
telemetry costs almost nothing: serve throughput with ``--telemetry
sampler`` must stay at or above 0.9x the ``--telemetry off`` run.
Wall-clock ratios are noisy under arbitrary test runners, so the gate
only runs when ``OBS_SMOKE=1`` (the CI ``obs-smoke`` job sets it);
the conservation companions in ``tests/obs/test_sampler.py`` run
always.
"""

import os
import time

import pytest

from repro.serve import ServeConfig, run_serve

pytestmark = pytest.mark.skipif(
    os.environ.get("OBS_SMOKE") != "1",
    reason="wall-clock overhead gate; set OBS_SMOKE=1 to run",
)

#: The bench harness's serve scenario (see repro.bench._serve_rps).
SCENARIO = dict(tier="10MB", queries=120, clients=4, seed=7)

#: Telemetry-on throughput must stay at or above this fraction of
#: telemetry-off throughput (the ISSUE acceptance threshold).
MIN_RATIO = 0.9

ROUNDS = 3


def _best_wall_s(telemetry: str) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        config = ServeConfig(telemetry=telemetry, **SCENARIO)
        t0 = time.perf_counter()
        run_serve(config)
        best = min(best, time.perf_counter() - t0)
    return best


def test_sampler_overhead_within_budget():
    off_s = _best_wall_s("off")
    on_s = _best_wall_s("sampler")
    ratio = off_s / on_s  # throughput ratio: >1 means sampler is faster
    assert ratio >= MIN_RATIO, (
        f"telemetry-on throughput is {ratio:.3f}x telemetry-off "
        f"(off {off_s:.3f}s vs sampler {on_s:.3f}s); "
        f"budget is >= {MIN_RATIO}x"
    )


def test_sampler_report_carries_aggregates():
    report = run_serve(ServeConfig(telemetry="sampler", **SCENARIO))
    telemetry = report["telemetry"]
    assert telemetry["mode"] == "sampler"
    assert telemetry["groups"]
    assert report["energy"]["request_energy_j"]["p99_j"] is not None
