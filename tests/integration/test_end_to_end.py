"""End-to-end integration tests: the paper's pipeline on small inputs."""

import pytest

from repro import Machine, tiny_intel
from repro.core import calibrate, profile_workload, verify
from repro.db import Database, sqlite_like
from repro.workloads.tpch import TpchData, load_into, run_query


class TestFullPipeline:
    def test_calibrate_verify_profile(self):
        """§2 + §3 in one flow: calibrate, verify, break a query down."""
        machine = Machine(tiny_intel(), seed=1)
        cal = calibrate(machine)
        report = verify(machine, cal.delta_e, background=cal.background)
        assert report.average_accuracy_pct > 85.0

        db = Database(machine, sqlite_like(), name="e2e")
        load_into(db, TpchData("10MB"))
        workload = lambda: run_query(db, 6)
        profile = profile_workload(
            machine, "Q6", workload, cal.delta_e,
            background=cal.background, warmup=workload,
        )
        breakdown = profile.breakdown
        # The headline finding on a warm query:
        assert breakdown.l1d_share_pct > 30.0
        assert breakdown.data_movement_share_pct > 50.0
        # All components non-negative and consistent.
        assert all(v >= 0 for v in breakdown.components().values())
        assert breakdown.total == pytest.approx(
            sum(breakdown.components().values())
        )

    def test_breakdown_explains_majority_of_busy_energy(self):
        """§3's claim: most Busy-CPU energy is attributable."""
        machine = Machine(tiny_intel(), seed=2)
        cal = calibrate(machine)
        db = Database(machine, sqlite_like(), name="e2e2")
        load_into(db, TpchData("10MB"))
        workload = lambda: run_query(db, 1)
        profile = profile_workload(
            machine, "Q1", workload, cal.delta_e,
            background=cal.background, warmup=workload,
        )
        assert profile.breakdown_coverage_pct > 70.0

    def test_store_hit_rate_matches_paper(self):
        """§2.3: ~99.86% of query stores hit L1D."""
        machine = Machine(tiny_intel(), seed=3)
        db = Database(machine, sqlite_like(), name="e2e3")
        load_into(db, TpchData("10MB"))
        run_query(db, 3)
        machine.reset_measurements()
        run_query(db, 3)
        counters = machine.pmu.counters
        assert counters.store_l1d_hit_rate > 0.99

    def test_queries_have_high_l1d_hit_rate(self):
        """§3.2: L1D hit rate ~97.7% for warm query workloads."""
        machine = Machine(tiny_intel(), seed=4)
        db = Database(machine, sqlite_like(), name="e2e4")
        load_into(db, TpchData("10MB"))
        run_query(db, 1)
        machine.reset_measurements()
        run_query(db, 1)
        counters = machine.pmu.counters
        assert counters.l1d_miss_rate < 0.05

    def test_high_ipc_like_paper(self):
        """§3.4: TPC-H runs at IPC ~1.9 (busy CPU)."""
        machine = Machine(tiny_intel(), seed=5)
        db = Database(machine, sqlite_like(), name="e2e5")
        load_into(db, TpchData("10MB"))
        run_query(db, 1)
        machine.reset_measurements()
        run_query(db, 1)
        assert machine.pmu.counters.ipc > 1.2


class TestDeterminism:
    def test_identical_seeds_identical_energy(self):
        def run(seed):
            machine = Machine(tiny_intel(), seed=seed)
            db = Database(machine, sqlite_like(), name="det")
            load_into(db, TpchData("10MB"))
            run_query(db, 12)
            stats = machine.stats()
            return (stats.energy_package_j, stats.counters.n_l1d,
                    stats.time_s)

        assert run(9) == run(9)

    def test_counters_insensitive_to_noise_seed(self):
        """Noise affects measurements, never the simulated execution."""
        def counters(seed):
            machine = Machine(tiny_intel(), seed=seed)
            db = Database(machine, sqlite_like(), name="det2")
            load_into(db, TpchData("10MB"))
            run_query(db, 12)
            c = machine.pmu.counters
            return (c.n_l1d, c.n_mem, c.cycles)

        assert counters(1) == counters(2)
