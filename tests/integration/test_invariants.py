"""Property-based invariants across the whole stack."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Machine, tiny_intel
from repro.core.breakdown import price_counters
from repro.core.model import DeltaE
from repro.sim.pmu import PmuCounters


def quiet():
    import dataclasses

    return Machine(dataclasses.replace(tiny_intel(), measurement_noise=0.0))


#: A random but valid op program: (kind, argument) pairs.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["load", "dep_load", "store", "add", "nop", "mul",
                         "cmp", "branch", "other"]),
        st.integers(min_value=0, max_value=63),
    ),
    min_size=1, max_size=200,
)


def _run_program(machine, program, region):
    for kind, arg in program:
        if kind == "load":
            machine.load(region.line(arg))
        elif kind == "dep_load":
            machine.load(region.line(arg), dependent=True)
        elif kind == "store":
            machine.store(region.line(arg))
        else:
            getattr(machine, kind)(arg % 7 + 1)


class TestCounterInvariants:
    @settings(max_examples=40, deadline=None)
    @given(_OPS)
    def test_cache_level_counts_chain(self, program):
        """Demand traffic is conserved level to level.

        L2 sees every L1D load miss plus every store miss (the RFO
        fetch); L3 sees every L2 miss; DRAM every L3 miss."""
        machine = quiet()
        region = machine.address_space.alloc_lines(64, "p")
        _run_program(machine, program, region)
        c = machine.pmu.counters
        store_misses = c.n_store - c.n_store_l1d_hit
        assert c.n_l2 == (c.n_l1d - c.l1d_hits) + store_misses
        assert c.l2_hits + c.n_l3 == c.n_l2
        assert c.l3_hits + c.n_mem == c.n_l3
        assert c.n_l2 >= c.n_l3 >= c.n_mem

    @settings(max_examples=40, deadline=None)
    @given(_OPS)
    def test_cycles_bound_below_by_stalls(self, program):
        machine = quiet()
        region = machine.address_space.alloc_lines(64, "p")
        _run_program(machine, program, region)
        c = machine.pmu.counters
        assert c.cycles >= c.stall_cycles >= 0

    @settings(max_examples=40, deadline=None)
    @given(_OPS)
    def test_energy_monotone_in_work(self, program):
        """Doing the program twice costs strictly more than once."""
        once = quiet()
        region1 = once.address_space.alloc_lines(64, "p")
        _run_program(once, program, region1)
        once.settle()

        twice = quiet()
        region2 = twice.address_space.alloc_lines(64, "p")
        _run_program(twice, program, region2)
        _run_program(twice, program, region2)
        twice.settle()
        assert (twice.rapl.energy_package()
                > once.rapl.energy_package())

    @settings(max_examples=40, deadline=None)
    @given(_OPS)
    def test_time_energy_positive(self, program):
        machine = quiet()
        region = machine.address_space.alloc_lines(64, "p")
        _run_program(machine, program, region)
        stats = machine.stats()
        assert stats.time_s > 0
        assert stats.energy_package_j > 0
        assert stats.energy_core_j <= stats.energy_package_j


class TestBreakdownInvariants:
    DELTA = DeltaE(l1d=1.3e-9, reg2l1d=2.4e-9, stall=1.7e-9, mem=1e-7,
                   add=1e-9, nop=6e-10, l2=4e-9, l3=7e-9, pf_l2=7e-9,
                   pf_l3=1e-7)

    @settings(max_examples=60, deadline=None)
    @given(
        st.builds(
            PmuCounters,
            n_l1d=st.integers(0, 10_000),
            n_store_l1d_hit=st.integers(0, 10_000),
            n_l2=st.integers(0, 1_000),
            n_l3=st.integers(0, 1_000),
            n_mem=st.integers(0, 1_000),
            n_pf_l2=st.integers(0, 1_000),
            n_pf_l3=st.integers(0, 1_000),
            stall_cycles=st.floats(0, 1e6),
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_breakdown_totals_and_shares(self, counters, active_j):
        b = price_counters(counters, self.DELTA, active_j)
        components = b.components()
        assert all(v >= 0 for v in components.values())
        assert b.total == pytest.approx(sum(components.values()))
        shares = b.shares_pct()
        if b.total > 0:
            assert sum(shares.values()) == pytest.approx(100.0)
        tolerance = 1e-9
        assert -tolerance <= b.l1d_share_pct <= 100.0 + tolerance
        assert -tolerance <= b.data_movement_share_pct <= 100.0 + tolerance

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 10_000))
    def test_breakdown_linear_in_counts(self, n):
        a = price_counters(PmuCounters(n_l1d=n), self.DELTA, 0.0)
        b = price_counters(PmuCounters(n_l1d=2 * n), self.DELTA, 0.0)
        assert b.e_l1d == pytest.approx(2 * a.e_l1d)
