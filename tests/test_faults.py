"""Unit tests of the deterministic fault-injection layer."""

import pytest

from repro.errors import ConfigError, FaultConfigError, FaultError
from repro.faults import FAULT_SITES, FaultInjector, FaultPlan
from repro.obs.metrics import MetricsRegistry


class TestFaultPlan:
    def test_defaults_are_all_off(self):
        plan = FaultPlan()
        assert not plan.any_enabled
        plan.validate()

    def test_any_enabled(self):
        assert FaultPlan(disk_error_p=0.1).any_enabled
        assert FaultPlan(request_error_p=1.0).any_enabled

    def test_probabilities_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(disk_error_p=1.5).validate()
        with pytest.raises(ConfigError):
            FaultPlan(page_corrupt_p=-0.1).validate()

    def test_shape_fields_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(disk_slow_factor=0.5).validate()
        with pytest.raises(ConfigError):
            FaultPlan(page_repair_max=0).validate()
        with pytest.raises(ConfigError):
            FaultPlan(dvfs_stuck_epochs=0).validate()
        with pytest.raises(ConfigError):
            FaultPlan(disk_error_max_retries=-1).validate()

    def test_as_dict_covers_every_field(self):
        d = FaultPlan().as_dict()
        assert d["disk_error_p"] == 0.0
        assert d["disk_slow_factor"] == 20.0
        assert d["node_crash_p"] == 0.0
        assert d["net_partition_s"] == 0.02
        assert len(d) == 18

    def test_bad_probability_rejected_at_construction(self):
        """Satellite: garbage is rejected when the plan is *built*, with
        a FaultError (not a silent draw later)."""
        with pytest.raises(FaultError):
            FaultPlan(disk_error_p=1.5)
        with pytest.raises(FaultError):
            FaultPlan(net_drop_p=-0.01)
        with pytest.raises(FaultError):
            FaultPlan(node_crash_p=2.0)
        # The same error is also a ConfigError, so existing handlers
        # at the config boundary still catch it.
        with pytest.raises(ConfigError):
            FaultPlan(node_slow_factor=0.1)

    def test_cluster_shape_fields_validated(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(node_crash_restart_s=-1.0)
        with pytest.raises(FaultConfigError):
            FaultPlan(node_slow_factor=0.9)
        with pytest.raises(FaultConfigError):
            FaultPlan(net_partition_s=-0.5)


class TestFaultInjector:
    def test_zero_probability_never_draws(self):
        injector = FaultInjector(FaultPlan(), seed=7)
        for _ in range(100):
            assert not injector.disk_error()
            assert not injector.request_error()
        # Pay-as-you-go: no RNG stream was even created.
        assert injector._rngs == {}
        assert injector.injected == {}

    def test_same_seed_same_sequence(self):
        plan = FaultPlan(disk_error_p=0.3)
        a = FaultInjector(plan, seed=11)
        b = FaultInjector(plan, seed=11)
        seq_a = [a.disk_error() for _ in range(200)]
        seq_b = [b.disk_error() for _ in range(200)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_different_seeds_differ(self):
        plan = FaultPlan(disk_error_p=0.3)
        a = FaultInjector(plan, seed=11)
        b = FaultInjector(plan, seed=12)
        assert ([a.disk_error() for _ in range(200)]
                != [b.disk_error() for _ in range(200)])

    def test_sites_are_independent_streams(self):
        """Drawing at one site must not perturb another site's stream."""
        plan = FaultPlan(disk_error_p=0.3, core_stall_p=0.3)
        alone = FaultInjector(plan, seed=5)
        undisturbed = [alone.core_stall() for _ in range(100)]
        mixed = FaultInjector(plan, seed=5)
        interleaved = []
        for _ in range(100):
            mixed.disk_error()  # extra draws on a *different* site
            interleaved.append(mixed.core_stall())
        assert interleaved == undisturbed

    def test_fired_faults_counted(self):
        metrics = MetricsRegistry()
        injector = FaultInjector(FaultPlan(request_error_p=1.0),
                                 seed=3, metrics=metrics)
        assert injector.request_error()
        assert injector.request_error()
        assert injector.counts() == {"request.error": 2}
        snap = metrics.snapshot()
        assert snap["faults.injected{site=request.error}"] == 2

    def test_invalid_plan_rejected_at_construction(self):
        with pytest.raises(ConfigError):
            FaultInjector(FaultPlan(core_stall_s=-1.0), seed=0)

    def test_every_documented_site_has_a_method(self):
        injector = FaultInjector(FaultPlan(), seed=0)
        methods = {
            "disk.error": injector.disk_error,
            "disk.slow": injector.disk_slow,
            "page.corrupt": injector.page_corrupt,
            "core.stall": injector.core_stall,
            "dvfs.stuck": injector.dvfs_stuck,
            "request.error": injector.request_error,
            "node.crash": injector.node_crash,
            "node.slow": injector.node_slow,
            "net.partition": injector.net_partition,
            "net.drop": injector.net_drop,
        }
        assert set(methods) == set(FAULT_SITES)
        for method in methods.values():
            assert method() is False  # all-zero plan

    def test_unknown_site_rejected(self):
        """Satellite: a typo'd site name is a loud FaultError, never a
        silent draw from a fresh stream."""
        injector = FaultInjector(FaultPlan(), seed=0)
        with pytest.raises(FaultError):
            injector.fire("disk.eror", 0.5)
        with pytest.raises(FaultConfigError):
            injector.fire("node.crashh", 0.0)
        assert injector._rngs == {}

    def test_cluster_sites_draw_and_count(self):
        injector = FaultInjector(FaultPlan(node_crash_p=1.0,
                                           net_drop_p=1.0), seed=9)
        assert injector.node_crash()
        assert injector.net_drop()
        assert not injector.net_partition()  # zero-prob site
        assert injector.counts() == {"net.drop": 1, "node.crash": 1}
