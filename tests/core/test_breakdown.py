"""Unit tests for Eq. (1) pricing."""

import pytest

from repro.core.breakdown import estimate_active_energy, price_counters
from repro.core.model import DeltaE
from repro.sim.pmu import PmuCounters


def de() -> DeltaE:
    return DeltaE(l1d=1e-9, reg2l1d=2e-9, stall=0.5e-9, mem=100e-9,
                  add=1e-9, nop=0.5e-9, l2=4e-9, l3=6e-9,
                  pf_l2=6e-9, pf_l3=100e-9)


class TestPriceCounters:
    def test_each_term(self):
        counters = PmuCounters(n_l1d=10, n_store_l1d_hit=5, n_l2=2, n_l3=1,
                               n_mem=1, n_pf_l2=3, n_pf_l3=1,
                               stall_cycles=100.0)
        b = price_counters(counters, de(), active_energy_j=1.0)
        assert b.e_l1d == pytest.approx(10e-9)
        assert b.e_reg2l1d == pytest.approx(10e-9)
        assert b.e_l2 == pytest.approx(8e-9)
        assert b.e_l3 == pytest.approx(6e-9)
        assert b.e_mem == pytest.approx(100e-9)
        assert b.e_pf == pytest.approx(3 * 6e-9 + 100e-9)
        assert b.e_stall == pytest.approx(50e-9)

    def test_other_is_residual(self):
        counters = PmuCounters(n_l1d=10)
        b = price_counters(counters, de(), active_energy_j=50e-9)
        assert b.e_other == pytest.approx(40e-9)

    def test_other_clamped_at_zero(self):
        counters = PmuCounters(n_l1d=10)
        b = price_counters(counters, de(), active_energy_j=1e-9)
        assert b.e_other == 0.0

    def test_missing_levels_priced_zero(self):
        small = DeltaE(l1d=1e-9, reg2l1d=2e-9, stall=1e-9, mem=50e-9,
                       add=1e-9, nop=1e-9)
        counters = PmuCounters(n_l1d=5, n_l2=100, n_l3=100, n_pf_l2=5)
        b = price_counters(counters, small, active_energy_j=1.0)
        assert b.e_l2 == 0.0 and b.e_l3 == 0.0 and b.e_pf == 0.0


class TestEstimator:
    def test_includes_compute_terms(self):
        counters = PmuCounters(n_l1d=10, n_add=100, n_nop=200)
        est = estimate_active_energy(counters, de())
        assert est == pytest.approx(10e-9 + 100e-9 + 100e-9)

    def test_excludes_residual(self):
        """The estimator models E_other as add+nop only (2.5.5)."""
        counters = PmuCounters(n_l1d=10, n_other=1000)
        est = estimate_active_energy(counters, de())
        assert est == pytest.approx(10e-9)
