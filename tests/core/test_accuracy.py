"""Tests of the verification report (2.5.5)."""

import pytest

from repro.core.accuracy import VerificationRow, verify


class TestVerificationRow:
    def test_perfect(self):
        row = VerificationRow("x", measured_j=10.0, estimated_j=10.0)
        assert row.accuracy_pct == 100.0

    def test_symmetric_error(self):
        over = VerificationRow("x", 10.0, 11.0)
        under = VerificationRow("x", 10.0, 9.0)
        assert over.accuracy_pct == pytest.approx(under.accuracy_pct)

    def test_clamped_at_zero(self):
        row = VerificationRow("x", 1.0, 5.0)
        assert row.accuracy_pct == 0.0

    def test_zero_measurement(self):
        assert VerificationRow("x", 0.0, 1.0).accuracy_pct == 0.0


class TestVerify:
    def test_full_report(self, session_calibration):
        machine, cal = session_calibration
        report = verify(machine, cal.delta_e, background=cal.background)
        assert len(report.rows) == 7
        assert report.average_accuracy_pct >= 90.0

    def test_row_lookup(self, session_calibration):
        machine, cal = session_calibration
        report = verify(machine, cal.delta_e, background=cal.background)
        assert report.row("B_L1D_list_nop").name == "B_L1D_list_nop"
        with pytest.raises(KeyError):
            report.row("nope")
