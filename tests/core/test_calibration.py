"""Tests of the dE_m solving procedure."""

import pytest

from repro.core.calibration import calibrate, calibrate_pstates
from repro.errors import CalibrationError


class TestCalibrate:
    def test_recovers_ground_truth(self, session_calibration):
        """Calibrated dE_m land near the hidden energy table."""
        machine, cal = session_calibration
        table = machine.config.energy_table
        nj = cal.delta_e.nanojoules()
        assert nj["dE_L1D"] == pytest.approx(table.load_l1d.at(1.0), rel=0.15)
        assert nj["dE_Reg2L1D"] == pytest.approx(table.store_l1d.at(1.0), rel=0.15)
        assert nj["dE_stall"] == pytest.approx(table.stall_cycle.at(1.0), rel=0.15)
        mem_truth = table.mem_ctl.at(1.0) + table.dram_access.at(1.0)
        assert nj["dE_mem"] == pytest.approx(mem_truth, rel=0.15)

    def test_ordering(self, session_calibration):
        _, cal = session_calibration
        de = cal.delta_e
        assert de.l1d < de.reg2l1d < de.l2 < de.l3 < de.mem

    def test_prefetch_assumption(self, session_calibration):
        _, cal = session_calibration
        assert cal.delta_e.pf_l2 == cal.delta_e.l3
        assert cal.delta_e.pf_l3 == cal.delta_e.mem

    def test_results_contain_all_benchmarks(self, session_calibration):
        _, cal = session_calibration
        for name in ("B_L1D_array", "B_L1D_list", "B_L2", "B_L3", "B_mem",
                     "B_Reg2L1D", "B_add", "B_nop"):
            assert cal.result(name).name == name

    def test_unknown_result_rejected(self, session_calibration):
        _, cal = session_calibration
        with pytest.raises(CalibrationError):
            cal.result("B_bogus")

    def test_conflicting_pstate_args_rejected(self, machine):
        from repro.micro.runner import RuntimeConfig
        with pytest.raises(CalibrationError):
            calibrate(machine, pstate=24, runtime=RuntimeConfig(pstate=12))


class TestArmCalibration:
    def test_works_without_l2_l3(self, arm_machine):
        cal = calibrate(arm_machine)
        assert cal.delta_e.l2 is None
        assert cal.delta_e.l3 is None
        assert cal.delta_e.mem > cal.delta_e.l1d


class TestPstateSweep:
    def test_voltage_scaling_pattern(self, machine):
        results = calibrate_pstates(machine, [36, 12])
        hi = results[36].delta_e
        lo = results[12].delta_e
        # Core-located ops drop hard; DRAM barely (Table 2's pattern).
        assert lo.l1d < 0.6 * hi.l1d
        assert lo.mem > 0.85 * hi.mem
