"""Tests of the one-call workload profiler."""

from repro.core.profiler import profile_workload


class TestProfileWorkload:
    def test_basic_profile(self, session_calibration):
        machine, cal = session_calibration
        region = machine.address_space.alloc_lines(8, "pw")

        def workload():
            for _ in range(500):
                machine.load(region.base)
                machine.add(2)

        profile = profile_workload(
            machine, "w", workload, cal.delta_e, background=cal.background,
        )
        assert profile.name == "w"
        assert profile.breakdown.active_energy_j > 0
        assert profile.counters.n_l1d >= 500
        assert profile.busy_s > 0

    def test_prefetcher_on_by_default(self, session_calibration):
        machine, cal = session_calibration
        profile_workload(machine, "w", lambda: machine.add(10),
                         cal.delta_e, background=cal.background)
        assert machine.prefetcher.enabled

    def test_warmup_not_measured(self, session_calibration):
        machine, cal = session_calibration
        calls = []
        profile = profile_workload(
            machine, "w", lambda: (calls.append(1), machine.add(100))[1],
            cal.delta_e, background=cal.background,
            warmup=lambda: calls.append("warm"),
        )
        assert "warm" in calls
        assert profile.counters.n_add == 100

    def test_pinned_pstate(self, session_calibration):
        machine, cal = session_calibration
        profile_workload(machine, "w", lambda: machine.add(10),
                         cal.delta_e, background=cal.background, pstate=24)
        assert machine.pstate == 24
        machine.set_pstate(36)
