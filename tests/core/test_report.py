"""Tests of the text renderers."""

from repro.core.accuracy import VerificationReport, VerificationRow
from repro.core.model import EnergyBreakdown
from repro.core.report import (
    render_breakdown_bar,
    render_breakdown_rows,
    render_delta_e,
    render_table,
    render_verification,
)


def breakdown() -> EnergyBreakdown:
    return EnergyBreakdown(4, 2, 1, 0.5, 0.5, 0.5, 1, 0.5,
                           active_energy_j=10.0)


class TestRenderTable:
    def test_headers_and_rows(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", None]], title="T")
        assert "T" in text
        assert "a" in text and "b" in text
        assert "2.50" in text
        assert "-" in text  # None cell

    def test_large_and_small_numbers(self):
        text = render_table(["v"], [[123456.0], [0.0001]])
        assert "1.23e+05" in text and "0.0001" in text

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderers:
    def test_breakdown_rows(self):
        text = render_breakdown_rows({"w1": breakdown()}, "Fig")
        assert "E_L1D%" in text and "w1" in text

    def test_breakdown_bar_width(self):
        bar = render_breakdown_bar(breakdown(), width=40)
        assert len(bar) == 42  # brackets + width
        assert "#" in bar

    def test_delta_e_table(self):
        text = render_delta_e({36: {"dE_L1D": 1.3}, 12: {"dE_L1D": 0.6}})
        assert "P-state 36" in text and "P-state 12" in text

    def test_verification_table(self):
        report = VerificationReport([VerificationRow("b", 2.0, 1.9)])
        text = render_verification(report)
        assert "b" in text and "average" in text
