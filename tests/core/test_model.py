"""Unit tests for DeltaE / EnergyBreakdown / WorkloadProfile."""

import pytest

from repro.core.model import (
    BREAKDOWN_COMPONENTS,
    MS,
    DeltaE,
    EnergyBreakdown,
    WorkloadProfile,
    sum_breakdowns,
)
from repro.errors import CalibrationError
from repro.sim.pmu import PmuCounters


def sample_delta_e() -> DeltaE:
    return DeltaE(l1d=1.3e-9, reg2l1d=2.4e-9, stall=1.7e-9, mem=103e-9,
                  add=1.0e-9, nop=0.65e-9, l2=4.4e-9, l3=6.6e-9,
                  pf_l2=6.6e-9, pf_l3=103e-9)


def sample_breakdown(**overrides) -> EnergyBreakdown:
    values = dict(e_l1d=4.0, e_reg2l1d=2.0, e_l2=1.0, e_l3=0.5, e_mem=0.5,
                  e_pf=0.5, e_stall=1.0, e_other=0.5,
                  active_energy_j=10.0, background_energy_j=5.0)
    values.update(overrides)
    return EnergyBreakdown(**values)


class TestMS:
    def test_paper_set(self):
        assert MS == ("L1D", "Reg2L1D", "L2", "L3", "mem", "pf", "stall")

    def test_components_cover_ms_plus_other(self):
        assert len(BREAKDOWN_COMPONENTS) == len(MS) + 1
        assert BREAKDOWN_COMPONENTS[-1] == "E_other"


class TestDeltaE:
    def test_nanojoules_rendering(self):
        nj = sample_delta_e().nanojoules()
        assert nj["dE_L1D"] == pytest.approx(1.3)
        assert nj["dE_mem"] == pytest.approx(103.0)

    def test_optional_levels_render_none(self):
        de = DeltaE(l1d=1e-9, reg2l1d=2e-9, stall=1e-9, mem=50e-9,
                    add=1e-9, nop=1e-9)
        nj = de.nanojoules()
        assert nj["dE_L2"] is None
        assert nj["dE_L3"] is None


class TestEnergyBreakdown:
    def test_total(self):
        assert sample_breakdown().total == pytest.approx(10.0)

    def test_shares_sum_to_100(self):
        shares = sample_breakdown().shares_pct()
        assert sum(shares.values()) == pytest.approx(100.0)

    def test_l1d_share(self):
        assert sample_breakdown().l1d_share_pct == pytest.approx(60.0)

    def test_movement_share_excludes_other(self):
        assert sample_breakdown().data_movement_share_pct == pytest.approx(95.0)

    def test_zero_total(self):
        b = EnergyBreakdown(0, 0, 0, 0, 0, 0, 0, 0)
        assert b.l1d_share_pct == 0.0
        assert all(v == 0.0 for v in b.shares_pct().values())

    def test_scaled(self):
        b = sample_breakdown().scaled(0.5)
        assert b.e_l1d == pytest.approx(2.0)
        assert b.active_energy_j == pytest.approx(5.0)

    def test_scaling_preserves_shares(self):
        original = sample_breakdown().shares_pct()
        scaled = sample_breakdown().scaled(3.0).shares_pct()
        for component in BREAKDOWN_COMPONENTS:
            assert scaled[component] == pytest.approx(original[component])


class TestSumBreakdowns:
    def test_componentwise(self):
        total = sum_breakdowns([sample_breakdown(), sample_breakdown()])
        assert total.e_l1d == pytest.approx(8.0)
        assert total.active_energy_j == pytest.approx(20.0)

    def test_empty_rejected(self):
        with pytest.raises(CalibrationError):
            sum_breakdowns([])


class TestWorkloadProfile:
    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            name="w", breakdown=sample_breakdown(),
            counters=PmuCounters(), busy_s=1.0, idle_s=0.0, time_s=1.0,
            domain="core",
        )

    def test_busy_cpu_energy(self):
        assert self.profile().busy_cpu_energy_j == pytest.approx(15.0)

    def test_breakdown_coverage(self):
        # (movement 9.5 + background 5) / busy 15 = 96.7%
        assert self.profile().breakdown_coverage_pct == pytest.approx(96.7, abs=0.1)


class TestSerialization:
    def test_round_trip(self):
        original = sample_delta_e()
        restored = DeltaE.from_json(original.to_json())
        assert restored == original

    def test_optional_levels_survive(self):
        original = DeltaE(l1d=1e-9, reg2l1d=2e-9, stall=1e-9, mem=5e-8,
                          add=1e-9, nop=1e-9)
        restored = DeltaE.from_json(original.to_json())
        assert restored.l2 is None and restored.pf_l3 is None

    def test_unknown_fields_rejected(self):
        import json
        import pytest as _pytest
        from repro.errors import CalibrationError

        payload = json.loads(sample_delta_e().to_json())
        payload["dE_bogus"] = 1.0
        with _pytest.raises(CalibrationError):
            DeltaE.from_json(json.dumps(payload))
