"""Hash sharding and mergeable-aggregate unit tests."""

import pytest

from repro.db.exprs import Col
from repro.db.operators import AggSpec
from repro.db.planner import Aggregate, Scan
from repro.db.sharding import (
    merge_partials,
    partition_rows,
    shard_aggregate,
    shard_of,
    shard_scan,
    shard_table_name,
)
from repro.errors import PlanError
from repro.seeding import stable_hash

ROWS = [(i, f"name{i}", i * 10.0) for i in range(50)]


class TestPartitioning:
    def test_single_shard_partition_is_identity(self):
        parts = partition_rows(ROWS, 1)
        assert parts == [ROWS]

    def test_partition_covers_and_preserves_order(self):
        parts = partition_rows(ROWS, 4)
        assert sum(len(p) for p in parts) == len(ROWS)
        for part in parts:
            keys = [row[0] for row in part]
            # Input order preserved inside each shard.
            assert keys == sorted(keys)
        merged = sorted(row for part in parts for row in part)
        assert merged == ROWS

    def test_routing_is_stable_hash_of_key(self):
        parts = partition_rows(ROWS, 4)
        for shard, part in enumerate(parts):
            for row in part:
                assert shard_of(row[0], 4) == shard
                assert stable_hash(row[0]) % 4 == shard

    def test_shard_table_name(self):
        assert shard_table_name("lineitem", 2) == "lineitem@s2"


class TestShardPlans:
    def test_shard_scan_targets_shard_table(self):
        plan = shard_scan("orders", 1)
        assert isinstance(plan, Scan)
        assert plan.table == "orders@s1"

    def test_shard_aggregate_shape(self):
        aggs = (AggSpec("n", "count"),)
        plan = shard_aggregate("orders", 0, aggs)
        assert isinstance(plan, Aggregate)
        assert plan.aggs == aggs

    def test_unmergeable_kind_rejected(self):
        with pytest.raises(PlanError):
            shard_aggregate("orders", 0, (AggSpec("a", "avg", Col("c")),))


class TestMergePartials:
    AGGS = (AggSpec("n", "count"), AggSpec("s", "sum", Col("c")),
            AggSpec("lo", "min", Col("c")), AggSpec("hi", "max", Col("c")))

    def test_merge_folds_each_kind(self):
        partials = [(3, 30.0, 1.0, 9.0), (2, 12.0, -1.0, 5.0)]
        assert merge_partials(self.AGGS, partials) == (5, 42.0, -1.0, 9.0)

    def test_merge_skips_empty_shard_partials(self):
        partials = [(3, 30.0, 1.0, 9.0), (0, None, None, None)]
        assert merge_partials(self.AGGS, partials) == (3, 30.0, 1.0, 9.0)

    def test_merge_of_all_empty_partials(self):
        partials = [(0, None, None, None)]
        merged = merge_partials(self.AGGS, partials)
        assert merged == (0, None, None, None)

    def test_merge_requires_a_partial(self):
        with pytest.raises(PlanError):
            merge_partials(self.AGGS, [])

    def test_merge_matches_unsharded_aggregate(self):
        values = [row[2] for row in ROWS]
        parts = partition_rows(ROWS, 4)
        partials = [
            (len(p), sum(r[2] for r in p) if p else None,
             min((r[2] for r in p), default=None),
             max((r[2] for r in p), default=None))
            for p in parts
        ]
        merged = merge_partials(self.AGGS, partials)
        assert merged == (len(ROWS), sum(values), min(values), max(values))
