"""End-to-end cluster tests: determinism, conservation, equivalence,
failover, hedging, and partial-result degradation."""

import json

import pytest

from repro import Machine, intel_i7_4790
from repro.cluster import (
    ClusterConfig,
    ShardMap,
    cluster_jobs,
    load_sharded,
    run_cluster,
)
from repro.cluster.topology import CLUSTER_TABLES, ClusterNode
from repro.db import Database, engine_profile
from repro.faults import FaultPlan
from repro.micro.measurement import measure_background
from repro.obs import Tracer
from repro.seeding import derive_seed
from repro.workloads.tpch import TpchData
from repro.workloads.tpch import schema as S


def report_bytes(report: dict) -> str:
    """Canonical JSON with the execution mode dropped, so reference and
    batched reports can be compared byte for byte."""
    config = dict(report["config"])
    config.pop("exec_mode")
    return json.dumps({**report, "config": config}, sort_keys=True)


CHAOS_PLAN = FaultPlan(node_crash_p=0.05, node_slow_p=0.1,
                       net_drop_p=0.05, net_partition_p=0.02)


def chaos_config(**overrides):
    base = dict(nodes=3, replication=2, clients=3, queries=12,
                tier="10MB", seed=11, faults=CHAOS_PLAN)
    base.update(overrides)
    return ClusterConfig(**base)


class TestDeterminism:
    def test_same_seed_same_report_bytes(self):
        a = run_cluster(chaos_config())
        b = run_cluster(chaos_config())
        assert report_bytes(a) == report_bytes(b)

    def test_reference_and_batched_reports_identical(self):
        batched = run_cluster(chaos_config(exec_mode="batched"))
        reference = run_cluster(chaos_config(exec_mode="reference"))
        assert report_bytes(batched) == report_bytes(reference)

    def test_seed_changes_the_run(self):
        a = run_cluster(chaos_config())
        b = run_cluster(chaos_config(seed=12))
        assert report_bytes(a) != report_bytes(b)


class TestEnergyConservation:
    def test_useful_plus_wasted_is_active_exactly(self):
        report = run_cluster(chaos_config())
        energy = report["energy"]
        # The constructive identity: active := useful + wasted.
        assert (energy["useful_energy_j"] + energy["wasted_energy_j"]
                == energy["active_energy_j"])
        # And it agrees with the independently measured machine totals.
        assert energy["active_energy_j"] == pytest.approx(
            energy["node_active_sum_j"], rel=1e-9)
        # Per-machine splits are exact too and fold to the cluster split.
        per_machine = ([report["coordinator"]]
                       + list(report["nodes"].values()))
        for section in per_machine:
            assert (section["useful_j"] + section["wasted_j"]
                    == section["active_j"])

    def test_wasted_reasons_are_itemised(self):
        report = run_cluster(chaos_config())
        reasons = report["energy"]["wasted_by_reason_j"]
        injected = report["resilience"]["faults_injected"]
        # This seed fires every cluster fault site (pinning that makes
        # the reason assertions meaningful).
        assert injected["node.crash"] >= 1
        assert injected["net.drop"] >= 1
        assert injected["net.partition"] >= 1
        assert injected["node.slow"] >= 1
        assert "node_crash" in reasons
        assert "net_drop" in reasons
        assert "net_partition" in reasons
        assert all(joules >= 0.0 for joules in reasons.values())

    def test_zero_fault_run_wastes_nothing(self):
        report = run_cluster(ClusterConfig(
            nodes=2, replication=2, clients=2, queries=6, tier="10MB",
            seed=3, subreq_timeout_s=10.0))
        assert report["energy"]["wasted_energy_j"] == 0.0
        assert report["energy"]["wasted_by_reason_j"] == {}
        assert report["counts"]["completed"] == report["counts"]["issued"]


class TestSingleNodeEquivalence:
    def test_rf1_zero_fault_cluster_matches_standalone_energy(self):
        """A 1-node, replication-1, zero-fault, free-NIC, zero-latency
        cluster must charge the node machine exactly what a standalone
        machine replaying the same plans charges — per request, to the
        last bit."""
        config = ClusterConfig(
            nodes=1, replication=1, clients=1, queries=6, tier="10MB",
            seed=13, net_payload_factor=0.0, net_latency_s=0.0,
            net_bytes_per_s=1e30, hedge_quantile=None,
            subreq_timeout_s=10.0)
        out: dict = {}
        report = run_cluster(config, out)
        assert report["counts"]["completed"] == config.queries
        assert report["subrequests"]["failovers"] == 0
        cluster_by_request = (
            out["traces"]["node0"].active_energy_by_meta("request"))
        cluster_by_request.pop(None, None)

        machine = Machine(
            intel_i7_4790(scale=config.scale),
            seed=derive_seed(config.seed, "cluster", "node0",
                             "machine-noise"),
            exec_mode=config.exec_mode,
        )
        db = Database(machine,
                      engine_profile(config.engine, config.setting),
                      name="node0")
        node = ClusterNode(name="node0", machine=machine, db=db)
        shard_map = ShardMap(1, 1, 1)
        data = TpchData(config.tier,
                        seed=derive_seed(config.seed, "cluster",
                                         "tpch-datagen"))
        load_sharded([node], shard_map, data)
        specs = cluster_jobs(shard_map)
        names = sorted(specs)
        tracer = Tracer(machine, background=measure_background(machine),
                        name="baseline")
        with tracer:
            for i in range(config.queries):
                spec = specs[names[i % len(names)]]
                with machine.tracer.span(f"q{i}", request=i):
                    list(db.execute_iter(spec.shard_plans[0], slot=0))
        standalone = tracer.finish().active_energy_by_meta("request")
        standalone.pop(None, None)

        assert sorted(cluster_by_request) == sorted(standalone)
        for request_id in standalone:
            assert (cluster_by_request[request_id]
                    == standalone[request_id])


class TestResultCorrectness:
    def test_scatter_gather_answers_match_unsharded_aggregates(self):
        config = ClusterConfig(
            nodes=3, replication=2, clients=3, queries=6, tier="10MB",
            seed=5, subreq_timeout_s=10.0)
        out: dict = {}
        report = run_cluster(config, out)
        assert report["counts"]["completed"] == config.queries
        data = TpchData(config.tier,
                        seed=derive_seed(config.seed, "cluster",
                                         "tpch-datagen"))
        tables = data.tables()
        expected = {}
        for table, column in CLUSTER_TABLES:
            index = S.SCHEMAS[table].index_of(column)
            rows = tables[table]
            expected[f"agg_{table}"] = (
                len(rows), sum(row[index] for row in rows))
        for request in out["coordinator"].requests:
            n, total = request.result
            want_n, want_total = expected[request.job.name]
            assert n == want_n
            assert total == pytest.approx(want_total, rel=1e-12)


class TestFailoverAndDegradation:
    def test_crash_heavy_run_fails_over_and_accounts_waste(self):
        report = run_cluster(ClusterConfig(
            nodes=3, replication=2, clients=2, queries=10, tier="10MB",
            seed=17, faults=FaultPlan(node_crash_p=0.4),
            subreq_timeout_s=0.02, failover_attempts=3))
        counts = report["counts"]
        assert counts["issued"] == 10
        assert report["subrequests"]["failovers"] > 0
        assert report["resilience"]["faults_injected"]["node.crash"] > 0
        reasons = report["energy"]["wasted_by_reason_j"]
        assert reasons.get("node_crash", 0.0) > 0.0
        # Crashed partial work plus failover re-reads are wasted but
        # conserved.
        energy = report["energy"]
        assert (energy["useful_energy_j"] + energy["wasted_energy_j"]
                == energy["active_energy_j"])
        crashes = sum(node["crashes"]
                      for node in report["nodes"].values())
        assert crashes == (
            report["resilience"]["faults_injected"]["node.crash"])

    def test_allow_partial_degrades_instead_of_failing(self):
        base = dict(nodes=2, replication=1, clients=2, queries=8,
                    tier="10MB", seed=23,
                    faults=FaultPlan(net_drop_p=0.6),
                    subreq_timeout_s=0.01, failover_attempts=2)
        degraded = run_cluster(ClusterConfig(allow_partial=True, **base))
        strict = run_cluster(ClusterConfig(allow_partial=False, **base))
        assert degraded["counts"]["degraded_partial"] > 0
        assert strict["counts"]["degraded_partial"] == 0
        # Same fault draws, opposite policy: what degrades there fails
        # here.
        assert strict["counts"]["failed"] >= (
            degraded["counts"]["degraded_partial"])

    def test_hedging_fires_and_wins_are_counted(self):
        report = run_cluster(ClusterConfig(
            nodes=3, replication=3, clients=3, queries=24, tier="10MB",
            seed=29, faults=FaultPlan(node_slow_p=0.5,
                                      node_slow_factor=20.0),
            hedge_quantile=0.5, hedge_min_samples=4,
            subreq_timeout_s=10.0))
        subreqs = report["subrequests"]
        assert subreqs["hedges"] > 0
        assert report["resilience"]["faults_injected"]["node.slow"] > 0
        if subreqs["hedge_wins"] > 0:
            assert "hedge_loser" in report["energy"]["wasted_by_reason_j"]

    def test_breaker_sheds_when_cluster_burns(self):
        report = run_cluster(ClusterConfig(
            nodes=2, replication=1, clients=4, queries=24, tier="10MB",
            seed=31, faults=FaultPlan(net_drop_p=0.8),
            subreq_timeout_s=0.005, failover_attempts=2,
            breaker_threshold=0.5, breaker_window=4,
            breaker_cooloff_s=0.5, tenants=2))
        assert report["resilience"]["breaker_trips"] > 0
        assert report["counts"]["shed_degraded"] > 0
        assert report["resilience"]["shed_degraded"] == (
            report["counts"]["shed_degraded"])


class TestConfigValidation:
    def test_replication_bounded_by_nodes(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            ClusterConfig(nodes=2, replication=3).validate()

    def test_bad_hedge_quantile_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            ClusterConfig(hedge_quantile=1.5).validate()

    def test_fault_plan_validated_through_cluster_config(self):
        from repro.errors import ConfigError
        plan = FaultPlan()
        # The plan is frozen and validated at construction; corrupt it
        # behind the dataclass's back to prove ClusterConfig re-checks.
        object.__setattr__(plan, "net_drop_p", 2.0)
        with pytest.raises(ConfigError):
            ClusterConfig(faults=plan).validate()
