"""NetworkModel unit tests: latency determinism, NIC energy, faults."""

import pytest

from repro import Machine, intel_i7_4790
from repro.faults import FaultInjector, FaultPlan
from repro.sim.network import (
    DELIVERED,
    LOST_DROP,
    LOST_PARTITION,
    NIC_BUFFER_BYTES,
    NetworkModel,
)


def machines(n=2):
    return {f"m{i}": Machine(intel_i7_4790(scale=4), seed=7 + i)
            for i in range(n)}


class TestLatency:
    def test_link_latencies_deterministic_across_builds(self):
        a = NetworkModel(machines(3), seed=42)
        b = NetworkModel(machines(3), seed=42)
        assert a.link_latencies() == b.link_latencies()

    def test_seed_changes_latencies(self):
        a = NetworkModel(machines(3), seed=42)
        b = NetworkModel(machines(3), seed=43)
        assert a.link_latencies() != b.link_latencies()

    def test_latency_symmetric_and_jittered(self):
        net = NetworkModel(machines(3), seed=1, base_latency_s=1e-3)
        assert net.latency_s("m0", "m1") == net.latency_s("m1", "m0")
        for latency in net.link_latencies().values():
            assert 0.8e-3 <= latency <= 1.2e-3

    def test_delay_adds_serialisation_term(self):
        net = NetworkModel(machines(), seed=1, bytes_per_s=1e6)
        base = net.latency_s("m0", "m1")
        assert net.delay_s("m0", "m1", 1000) == base + 1e-3

    def test_self_latency_is_zero(self):
        net = NetworkModel(machines(), seed=1)
        assert net.latency_s("m0", "m0") == 0.0


class TestNicEnergy:
    def test_tx_rx_charge_busy_time(self):
        ms = machines()
        net = NetworkModel(ms, seed=1)
        net.charge_tx("m0", 1024)
        net.charge_rx("m1", 1024)
        for m in ms.values():
            m.settle()
        assert ms["m0"].busy_s > 0
        assert ms["m1"].busy_s > 0

    def test_charge_capped_at_buffer(self):
        ms = machines()
        net = NetworkModel(ms, seed=1)
        # A 1 GB "message" must not walk past the staging buffer.
        net.charge_tx("m0", 10**9)
        assert net._charged(10**9) == NIC_BUFFER_BYTES

    def test_zero_payload_factor_charges_nothing(self):
        ms = machines()
        net = NetworkModel(ms, seed=1, payload_factor=0.0)
        net.charge_tx("m0", 4096)
        net.charge_rx("m1", 4096)
        assert ms["m0"].busy_s == 0.0
        assert ms["m1"].busy_s == 0.0


class TestTransport:
    def test_fault_free_send_delivers(self):
        net = NetworkModel(machines(), seed=1)
        status, arrival = net.send("m0", "m1", 100, now=1.0)
        assert status == DELIVERED
        assert arrival == pytest.approx(1.0 + net.delay_s("m0", "m1", 100))
        assert net.messages == 1
        assert net.bytes_sent == 100

    def test_drop_loses_single_messages(self):
        injector = FaultInjector(FaultPlan(net_drop_p=1.0), seed=5)
        net = NetworkModel(machines(), seed=1, injector=injector)
        status, arrival = net.send("m0", "m1", 100, now=0.0)
        assert status == LOST_DROP
        assert arrival is None
        assert net.dropped == 1

    def test_partition_is_an_episode_not_a_redraw(self):
        plan = FaultPlan(net_partition_p=1.0, net_partition_s=0.5)
        injector = FaultInjector(plan, seed=5)
        net = NetworkModel(machines(), seed=1, injector=injector)
        status, _ = net.send("m0", "m1", 10, now=0.0)
        assert status == LOST_PARTITION
        assert net.partition_episodes == 1
        # While the link is down, messages die without new draws.
        status, _ = net.send("m1", "m0", 10, now=0.25)
        assert status == LOST_PARTITION
        assert net.partition_episodes == 1
        assert injector.counts()["net.partition"] == 1
        assert net.partitioned == 2

    def test_partition_heals_after_episode(self):
        plan = FaultPlan(net_partition_p=1.0, net_partition_s=0.1)
        injector = FaultInjector(plan, seed=5)
        net = NetworkModel(machines(), seed=1, injector=injector)
        net.send("m0", "m1", 10, now=0.0)
        # Past the episode end the link redraws (p=1.0: a new episode).
        status, _ = net.send("m0", "m1", 10, now=0.2)
        assert status == LOST_PARTITION
        assert net.partition_episodes == 2
