"""Tests of the micro-benchmark runner (runtime configuration, repeats)."""

from repro.micro.measurement import measure_background
from repro.micro.runner import (
    RuntimeConfig,
    apply_runtime_config,
    run_microbenchmark,
)


class TestRuntimeConfig:
    def test_pins_pstate(self, machine):
        apply_runtime_config(machine, RuntimeConfig(pstate=24))
        assert machine.pstate == 24

    def test_defaults_to_highest(self, machine):
        machine.set_pstate(12)
        apply_runtime_config(machine, RuntimeConfig())
        assert machine.pstate == machine.config.pstates.highest

    def test_disables_prefetcher_by_default(self, machine):
        machine.set_prefetcher(True)
        apply_runtime_config(machine, RuntimeConfig())
        assert not machine.prefetcher.enabled

    def test_disables_eist(self, machine):
        machine.enable_eist()
        apply_runtime_config(machine, RuntimeConfig())
        assert not machine.eist_enabled


class TestRunMicrobenchmark:
    def test_result_fields(self, machine):
        result = run_microbenchmark(
            machine, "B_add", runtime=RuntimeConfig(target_ops=10_000)
        )
        assert result.name == "B_add"
        assert result.ops_measured > 0
        assert result.active_energy_j > 0
        assert result.bli_pct > 90

    def test_repeats_average_reduces_variance(self):
        from repro import Machine, tiny_intel
        import statistics

        def spread(repeats, seed):
            machine = Machine(tiny_intel(), seed=seed)
            background = measure_background(machine)
            vals = []
            for _ in range(6):
                r = run_microbenchmark(
                    machine, "B_add", background,
                    RuntimeConfig(target_ops=5_000, repeats=repeats),
                )
                vals.append(r.active_energy_j)
            return statistics.pstdev(vals) / statistics.mean(vals)

        assert spread(8, seed=5) < spread(1, seed=5)

    def test_explicit_rounds_respected(self, machine):
        result = run_microbenchmark(
            machine, "B_nop", rounds=3,
            runtime=RuntimeConfig(target_ops=1),
        )
        assert result.rounds == 3
