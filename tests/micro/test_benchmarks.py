"""Tests of the MBS benchmark definitions and their behaviours."""

import pytest

from repro.errors import ConfigError
from repro.micro.benchmarks import MBS, default_rounds, mbs_for, prepare
from repro.micro.measurement import measure_background
from repro.micro.runner import RuntimeConfig, run_prepared


class TestPrepare:
    def test_all_mbs_preparable(self, machine):
        for name in MBS:
            prepared = prepare(name, machine)
            assert prepared.name == name
            assert prepared.items_per_round > 0

    def test_unknown_name(self, machine):
        with pytest.raises(ConfigError):
            prepare("B_nonexistent", machine)

    def test_l1_benchmarks_fit_l1(self, machine):
        for name in ("B_L1D_array", "B_L1D_list"):
            prepared = prepare(name, machine)
            assert prepared.regions[0].size <= machine.config.l1d.size

    def test_l2_benchmark_exceeds_l1(self, machine):
        prepared = prepare("B_L2", machine)
        assert prepared.regions[0].size > machine.config.l1d.size

    def test_mem_benchmark_exceeds_all_caches(self, machine):
        prepared = prepare("B_mem", machine)
        assert prepared.regions[0].size > machine.config.l3.size

    def test_dtcm_requires_tcm(self, machine):
        with pytest.raises(ConfigError):
            prepare("B_DTCM_array", machine)

    def test_dtcm_on_arm(self, arm_machine):
        prepared = prepare("B_DTCM_array", arm_machine)
        assert prepared.regions[0].base >= 1 << 40

    def test_mbs_for_respects_geometry(self, machine, arm_machine):
        assert "B_L2" in mbs_for(machine)
        assert "B_L3" in mbs_for(machine)
        arm = mbs_for(arm_machine)
        assert "B_L2" not in arm and "B_L3" not in arm
        assert "B_mem" in arm

    def test_default_rounds_scales_inverse(self, machine):
        small = prepare("B_L1D_array", machine)
        big = prepare("B_mem", machine)
        assert default_rounds(small, 10_000) >= default_rounds(big, 10_000)

    def test_rejects_nonpositive_rounds(self, machine):
        prepared = prepare("B_add", machine)
        with pytest.raises(ConfigError):
            prepared.run(0)


class TestBehaviours:
    """Table 1's qualitative behaviours, asserted per benchmark."""

    @pytest.fixture
    def runtime(self):
        return RuntimeConfig(target_ops=20_000, repeats=1)

    def run(self, machine, name, runtime):
        background = measure_background(machine)
        return run_prepared(machine, prepare(name, machine), background,
                            runtime)

    def test_l1d_array_no_stalls(self, machine, runtime):
        result = self.run(machine, "B_L1D_array", runtime)
        counters = result.measurement.counters
        assert counters.l1d_miss_rate < 0.01
        assert result.ipc > 1.7

    def test_l1d_list_quarter_ipc(self, machine, runtime):
        result = self.run(machine, "B_L1D_list", runtime)
        assert 0.2 < result.ipc < 0.3
        assert result.measurement.counters.l1d_miss_rate < 0.01

    def test_l2_only_l2(self, machine, runtime):
        result = self.run(machine, "B_L2", runtime)
        counters = result.measurement.counters
        assert counters.l1d_miss_rate > 0.95
        assert counters.l2_miss_rate < 0.05

    def test_l3_only_l3(self, machine, runtime):
        result = self.run(machine, "B_L3", runtime)
        counters = result.measurement.counters
        assert counters.l2_miss_rate > 0.95
        assert counters.l3_miss_rate < 0.05

    def test_mem_misses_everything(self, machine, runtime):
        result = self.run(machine, "B_mem", runtime)
        counters = result.measurement.counters
        assert counters.l3_miss_rate > 0.9
        assert result.ipc < 0.05

    def test_reg2l1d_one_store_per_cycle(self, machine, runtime):
        result = self.run(machine, "B_Reg2L1D", runtime)
        assert result.ipc == pytest.approx(1.0, abs=0.1)
        assert result.measurement.counters.store_l1d_hit_rate > 0.99

    def test_prefetcher_off_during_benchmarks(self, machine, runtime):
        result = self.run(machine, "B_mem", runtime)
        counters = result.measurement.counters
        assert counters.n_pf_l2 == 0 and counters.n_pf_l3 == 0

    def test_dtcm_array_cheaper_than_l1d_array(self, quiet_arm, runtime):
        arm_machine = quiet_arm
        background = measure_background(arm_machine)
        plain = run_prepared(arm_machine, prepare("B_L1D_array", arm_machine),
                             background, runtime)
        dtcm = run_prepared(arm_machine, prepare("B_DTCM_array", arm_machine),
                            background, runtime)
        per_plain = plain.active_energy_j / plain.ops_measured
        per_dtcm = dtcm.active_energy_j / dtcm.ops_measured
        saving = 1 - per_dtcm / per_plain
        assert saving == pytest.approx(0.10, abs=0.02)
