"""Tests of the Active-energy measurement procedure (§2.6)."""

import pytest

from repro.micro.measurement import (
    DOMAIN_CORE,
    DOMAIN_PACKAGE,
    DOMAIN_PACKAGE_DRAM,
    BackgroundRates,
    measure_background,
    run_measured,
    select_domain,
)
from repro.sim.pmu import PmuCounters


class TestDomainSelection:
    def test_core_only(self):
        assert select_domain(PmuCounters(n_l1d=10, n_l2=2)) == DOMAIN_CORE

    def test_package_when_l3_touched(self):
        assert select_domain(PmuCounters(n_l3=1)) == DOMAIN_PACKAGE

    def test_package_dram_when_memory_touched(self):
        assert select_domain(PmuCounters(n_mem=1)) == DOMAIN_PACKAGE_DRAM

    def test_prefetch_counts_as_touching(self):
        assert select_domain(PmuCounters(n_pf_l2=1)) == DOMAIN_PACKAGE
        assert select_domain(PmuCounters(n_pf_l3=1)) == DOMAIN_PACKAGE_DRAM


class TestBackgroundRates:
    def test_rate_lookup(self):
        rates = BackgroundRates(core_w=2.0, package_w=5.0, dram_w=1.0)
        assert rates.rate(DOMAIN_CORE) == 2.0
        assert rates.rate(DOMAIN_PACKAGE) == 5.0
        assert rates.rate(DOMAIN_PACKAGE_DRAM) == 6.0

    def test_unknown_domain(self):
        with pytest.raises(ValueError):
            BackgroundRates(1, 2, 3).rate("gpu")

    def test_measured_rates_match_config(self, quiet_machine):
        rates = measure_background(quiet_machine)
        bg = quiet_machine.config.background
        assert rates.core_w == pytest.approx(bg.core, rel=1e-6)
        assert rates.package_w == pytest.approx(bg.package_total, rel=1e-6)
        assert rates.dram_w == pytest.approx(bg.dram, rel=1e-6)


class TestRunMeasured:
    def test_active_energy_excludes_background(self, quiet_machine):
        machine = quiet_machine
        rates = measure_background(machine)
        region = machine.address_space.alloc_lines(4, "w")
        machine.load(region.base)  # warm

        def workload():
            for _ in range(1000):
                machine.load(region.base)

        m = run_measured(machine, workload, rates, apply_noise=False)
        # 1000 L1 loads at ~1.3 nJ each.
        assert m.active_energy_j == pytest.approx(1000 * 1.30e-9, rel=0.02)

    def test_counters_scoped_to_window(self, quiet_machine):
        machine = quiet_machine
        rates = measure_background(machine)
        machine.add(500)  # outside the window

        m = run_measured(machine, lambda: machine.add(100), rates)
        assert m.counters.n_add == 100

    def test_noise_applied_when_requested(self):
        from repro import Machine, tiny_intel
        machine = Machine(tiny_intel(), seed=11)
        rates = measure_background(machine)
        values = set()
        for _ in range(4):
            m = run_measured(machine, lambda: machine.add(10_000), rates)
            values.add(round(m.active_energy_j, 15))
        assert len(values) > 1  # noise varies between windows

    def test_busy_cpu_energy_geq_active(self, quiet_machine):
        machine = quiet_machine
        rates = measure_background(machine)
        m = run_measured(machine, lambda: machine.add(1000), rates,
                         apply_noise=False)
        assert m.busy_cpu_energy_j >= m.active_energy_j
