"""Tests of the verification benchmark set (VMBS)."""

import pytest

from repro.errors import ConfigError
from repro.micro.verification import VMBS, prepare_verification, vmbs_for


class TestPrepareVerification:
    def test_all_vmbs_preparable(self, machine):
        for name in VMBS:
            prepared = prepare_verification(name, machine)
            assert prepared.items_per_round > 0

    def test_unknown_rejected(self, machine):
        with pytest.raises(ConfigError):
            prepare_verification("B_bogus", machine)

    def test_vmbs_for_arm_drops_l2_l3(self, arm_machine):
        names = vmbs_for(arm_machine)
        assert "B_L2_nop" not in names
        assert "B_L3_add" not in names
        assert "B_mem_nop" in names

    def test_vmbs_for_intel_has_all(self, machine):
        assert tuple(vmbs_for(machine)) == VMBS

    def test_order_matches_table3(self, machine):
        names = vmbs_for(machine)
        assert names == [n for n in VMBS if n in names]


class TestCompositeBehaviour:
    def test_nop_mix_present(self, machine):
        prepared = prepare_verification("B_L1D_list_nop", machine)
        machine.reset_measurements()
        prepared.run(1)
        counters = machine.pmu.counters
        assert counters.n_nop == 2 * prepared.items_per_round

    def test_mixed_chain_touches_l2(self, machine):
        prepared = prepare_verification("B_L1D_list_L2", machine)
        machine.reset_measurements()
        prepared.run(2)
        assert machine.pmu.counters.n_l2 > 0

    def test_nop_add_mix(self, machine):
        prepared = prepare_verification("B_L1D_list_nop_add", machine)
        machine.reset_measurements()
        prepared.run(1)
        counters = machine.pmu.counters
        assert counters.n_add == prepared.items_per_round
        assert counters.n_nop == prepared.items_per_round
