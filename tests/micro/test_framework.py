"""Unit tests for the traversal frameworks (Algorithms 1-4)."""

import pytest

from repro.errors import ConfigError
from repro.micro import framework


class TestShuffledChainOrder:
    def test_is_permutation(self):
        order = framework.shuffled_chain_order(100)
        assert sorted(order) == list(range(100))

    def test_deterministic_per_seed(self):
        assert (framework.shuffled_chain_order(64, seed=5)
                == framework.shuffled_chain_order(64, seed=5))

    def test_seed_changes_order(self):
        assert (framework.shuffled_chain_order(64, seed=1)
                != framework.shuffled_chain_order(64, seed=2))

    def test_breaks_locality(self):
        """Most consecutive hops must span more than a few lines."""
        order = framework.shuffled_chain_order(256)
        jumps = [abs(order[i + 1] - order[i]) for i in range(len(order) - 1)]
        long_jumps = sum(1 for j in jumps if j > 4)
        assert long_jumps > len(jumps) * 0.7

    def test_tiny_chain(self):
        assert framework.shuffled_chain_order(2) == [0, 1]

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            framework.shuffled_chain_order(0)


class TestListTraverse:
    def test_issues_dependent_loads(self, machine):
        region = machine.address_space.alloc_lines(8, "t")
        machine.reset_measurements()
        framework.list_traverse(machine, region, range(8), rounds=2)
        counters = machine.pmu.counters
        assert counters.n_load_inst >= 16
        assert counters.stall_cycles > 0  # dependent chain stalls

    def test_compute_injection(self, machine):
        region = machine.address_space.alloc_lines(8, "t")
        machine.reset_measurements()
        framework.list_traverse(machine, region, range(8), rounds=1,
                                add_per_item=2, nop_per_item=3)
        counters = machine.pmu.counters
        assert counters.n_add == 16
        assert counters.n_nop == 24

    def test_loop_overhead_small(self, machine):
        region = machine.address_space.alloc_lines(256, "t")
        machine.reset_measurements()
        framework.list_traverse(machine, region, range(256), rounds=4)
        counters = machine.pmu.counters
        assert counters.body_loop_instruction_pct("load") > 95.0


class TestArrayTraverse:
    def test_no_stalls_when_l1_resident(self, machine):
        region = machine.address_space.alloc_lines(8, "t")
        framework.array_traverse(machine, region, 8, rounds=1)  # warm
        machine.reset_measurements()
        framework.array_traverse(machine, region, 8, rounds=10)
        assert machine.pmu.counters.stall_cycles == 0

    def test_ipc_near_two_on_dual_issue(self, machine):
        region = machine.address_space.alloc_lines(16, "t")
        framework.array_traverse(machine, region, 16, rounds=1)
        machine.reset_measurements()
        framework.array_traverse(machine, region, 16, rounds=50)
        assert machine.pmu.counters.ipc == pytest.approx(2.0, abs=0.3)


class TestStoreLoop:
    def test_stores_hit_after_allocate(self, machine):
        region = machine.address_space.alloc_lines(1, "v")
        machine.reset_measurements()
        framework.store_loop(machine, region, rounds=2, unroll=100)
        counters = machine.pmu.counters
        assert counters.n_store == 200
        assert counters.n_store_l1d_hit >= 199  # only the first can miss


class TestComputeLoop:
    def test_add_loop(self, machine):
        machine.reset_measurements()
        framework.compute_loop(machine, "add", rounds=3, unroll=50)
        assert machine.pmu.counters.n_add == 150

    def test_nop_loop(self, machine):
        machine.reset_measurements()
        framework.compute_loop(machine, "nop", rounds=2, unroll=50)
        assert machine.pmu.counters.n_nop == 100

    def test_unknown_kind_rejected(self, machine):
        with pytest.raises(ConfigError):
            framework.compute_loop(machine, "mul", rounds=1, unroll=1)


class TestInterleaved:
    def test_both_chains_walked(self, machine):
        r1 = machine.address_space.alloc_lines(4, "a")
        r2 = machine.address_space.alloc_lines(4, "b")
        machine.reset_measurements()
        framework.interleaved_list_traverse(
            machine, [(r1, range(4)), (r2, range(4))], rounds=3
        )
        assert machine.pmu.counters.n_load_inst == 24
