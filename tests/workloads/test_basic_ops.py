"""Tests of the 7 basic query operations (Figure 6's workloads)."""

import pytest

from repro.workloads.basic_ops import (
    BASIC_OPERATIONS,
    basic_operation_plan,
    run_basic_operation,
)


class TestPlans:
    def test_seven_operations(self):
        assert len(BASIC_OPERATIONS) == 7

    def test_unknown_operation(self):
        with pytest.raises(KeyError):
            basic_operation_plan("delete")

    @pytest.mark.parametrize("op", BASIC_OPERATIONS)
    def test_all_run(self, op, sqlite_db):
        rows = run_basic_operation(sqlite_db, op)
        assert isinstance(rows, list)

    def test_table_scan_returns_all_rows(self, postgres_db, tpch_small):
        rows = run_basic_operation(postgres_db, "table_scan")
        assert len(rows) == len(tpch_small.lineitem)

    def test_index_scan_same_rows_different_order(self, postgres_db):
        table = sorted(run_basic_operation(postgres_db, "table_scan"))
        index = sorted(run_basic_operation(postgres_db, "index_scan"))
        assert table == index

    def test_index_scan_is_shipdate_ordered(self, postgres_db):
        rows = run_basic_operation(postgres_db, "index_scan")
        shipdates = [r[11] for r in rows]
        assert shipdates == sorted(shipdates)

    def test_select_filters(self, sqlite_db):
        rows = run_basic_operation(sqlite_db, "select")
        assert all(10.0 <= r[5] <= 24.0 for r in rows)

    def test_sort_is_sorted(self, mysql_db):
        rows = run_basic_operation(mysql_db, "sort")
        prices = [r[6] for r in rows]
        assert prices == sorted(prices, reverse=True)

    def test_groupby_groups(self, sqlite_db, tpch_small):
        rows = run_basic_operation(sqlite_db, "groupby")
        total = sum(r[2] for r in rows)
        assert total == len(tpch_small.lineitem)

    def test_join_cardinality(self, sqlite_db, tpch_small):
        rows = run_basic_operation(sqlite_db, "join")
        assert len(rows) == len(tpch_small.lineitem)
