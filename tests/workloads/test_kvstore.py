"""Tests of the LSM key-value store (section-7 extension)."""

import pytest

from repro.errors import ConfigError
from repro.workloads.kvstore import (
    BloomFilter,
    LsmStore,
    SSTable,
    build_store,
    run_ycsb,
)


class TestBloomFilter:
    def test_no_false_negatives(self, machine):
        bloom = BloomFilter(machine, 100)
        for key in range(0, 200, 2):
            bloom.add(key)
        assert all(bloom.maybe_contains(k) for k in range(0, 200, 2))

    def test_mostly_rejects_absent(self, machine):
        bloom = BloomFilter(machine, 1000)
        for key in range(1000):
            bloom.add(key)
        false_positives = sum(
            1 for k in range(10_000, 11_000) if bloom.maybe_contains(k)
        )
        assert false_positives < 100  # <10% at 10 bits/key

    def test_charges_loads(self, machine):
        bloom = BloomFilter(machine, 10)
        machine.reset_measurements()
        bloom.maybe_contains(5)
        assert machine.pmu.counters.n_load_inst >= 1


class TestSSTable:
    def test_get(self, machine):
        table = SSTable(machine, [(k, f"v{k}") for k in range(0, 100, 2)], 64)
        assert table.get(42) == "v42"
        assert table.get(43) is None

    def test_scan(self, machine):
        table = SSTable(machine, [(k, k) for k in range(50)], 64)
        assert [k for k, _ in table.scan(10, 14)] == [10, 11, 12, 13, 14]

    def test_unsorted_rejected(self, machine):
        with pytest.raises(ConfigError):
            SSTable(machine, [(2, "a"), (1, "b")], 64)

    def test_min_max(self, machine):
        table = SSTable(machine, [(5, "a"), (9, "b")], 64)
        assert table.min_key == 5 and table.max_key == 9


class TestLsmStore:
    def test_put_get_roundtrip(self, machine):
        store = LsmStore(machine, memtable_entries=64)
        for key in range(300):
            store.put(key, key * 2)
        for key in (0, 150, 299):
            assert store.get(key) == key * 2
        assert store.get(999) is None

    def test_flush_happens(self, machine):
        store = LsmStore(machine, memtable_entries=32)
        for key in range(100):
            store.put(key, key)
        assert store.stats.flushes >= 2

    def test_compaction_bounds_run_count(self, machine):
        store = LsmStore(machine, memtable_entries=16, l0_fanout=3)
        for key in range(400):
            store.put(key, key)
        assert len(store.sstables) <= 4
        assert store.stats.compactions >= 1

    def test_newest_value_wins(self, machine):
        store = LsmStore(machine, memtable_entries=16)
        for key in range(64):
            store.put(key, "old")
        for key in range(64):
            store.put(key, "new")
        store.flush()
        store.compact()
        assert store.get(10) == "new"

    def test_scan_merges_layers(self, machine):
        store = LsmStore(machine, memtable_entries=32)
        for key in range(0, 100, 2):
            store.put(key, "s")      # mostly flushed
        for key in range(1, 100, 2):
            store.put(key, "m")      # mostly memtable
        got = store.scan(10, 20)
        assert [k for k, _ in got] == list(range(10, 21))

    def test_scan_limit(self, machine):
        store = LsmStore(machine, memtable_entries=512)
        for key in range(100):
            store.put(key, key)
        assert len(store.scan(0, 99, limit=7)) == 7

    def test_resident_count(self, machine):
        store = build_store(machine, n_keys=200)
        assert store.n_entries_resident >= 200


class TestYcsb:
    def test_mixes(self, machine):
        store = build_store(machine, n_keys=300)
        counts = run_ycsb(machine, store, "a", ops=100, n_keys=300)
        assert counts["read"] + counts["update"] == 100
        assert counts["read"] > 20 and counts["update"] > 20

    def test_read_only(self, machine):
        store = build_store(machine, n_keys=300)
        counts = run_ycsb(machine, store, "c", ops=50, n_keys=300)
        assert counts == {"read": 50, "update": 0, "scan": 0, "insert": 0}

    def test_unknown_workload(self, machine):
        store = build_store(machine, n_keys=200)
        with pytest.raises(ConfigError):
            run_ycsb(machine, store, "z")

    def test_point_reads_stall_heavier_than_scans(self, machine):
        store = build_store(machine, n_keys=1000)
        machine.reset_measurements()
        run_ycsb(machine, store, "c", ops=200, n_keys=1000)
        c_read = machine.pmu.counters
        stall_read = c_read.stall_cycles / c_read.cycles
        machine.reset_measurements()
        run_ycsb(machine, store, "e", ops=200, n_keys=1000)
        c_scan = machine.pmu.counters
        stall_scan = c_scan.stall_cycles / c_scan.cycles
        assert stall_read > stall_scan


class TestLsmProperties:
    """The LSM store behaves exactly like a dict, under any op sequence."""

    def test_random_ops_match_dict(self):


        from hypothesis import given, settings, strategies as st
        from repro import Machine, tiny_intel

        @settings(max_examples=25, deadline=None)
        @given(st.lists(
            st.tuples(st.sampled_from(["put", "get", "scan"]),
                      st.integers(min_value=0, max_value=120),
                      st.integers(min_value=0, max_value=1000)),
            min_size=1, max_size=120,
        ))
        def run(ops):
            machine = Machine(tiny_intel())
            store = LsmStore(machine, memtable_entries=16, l0_fanout=2)
            reference = {}
            for kind, key, value in ops:
                if kind == "put":
                    store.put(key, value)
                    reference[key] = value
                elif kind == "get":
                    assert store.get(key) == reference.get(key)
                else:
                    hi = key + 17
                    got = store.scan(key, hi)
                    expected = sorted(
                        (k, v) for k, v in reference.items() if key <= k <= hi
                    )
                    assert got == expected
            # Full-range scan equals the reference dict.
            everything = store.scan(-1, 10_000)
            assert everything == sorted(reference.items())

        run()
