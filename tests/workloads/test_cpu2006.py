"""Tests of the CPU2006-like kernels (Figure 10's workloads)."""

import pytest

from repro.workloads.cpu2006 import CPU2006_WORKLOADS, KERNELS, run_kernel


class TestKernels:
    def test_nine_workloads(self):
        assert len(CPU2006_WORKLOADS) == 9
        assert set(CPU2006_WORKLOADS) == set(KERNELS)

    @pytest.mark.parametrize("name", CPU2006_WORKLOADS)
    def test_all_run_within_budget(self, name, machine):
        machine.reset_measurements()
        run_kernel(machine, name, ops=5_000)
        counters = machine.pmu.counters
        assert counters.instructions > 0
        assert counters.instructions == pytest.approx(5_000, rel=0.3)

    def test_mcf_is_memory_bound(self, machine):
        run_kernel(machine, "mcf", ops=20_000)
        counters = machine.pmu.counters
        assert counters.stall_cycles > counters.cycles * 0.5
        assert counters.n_mem > 0

    def test_gobmk_is_cache_resident(self, machine):
        run_kernel(machine, "gobmk", ops=5_000)  # warm
        machine.reset_measurements()
        run_kernel(machine, "gobmk", ops=20_000)
        counters = machine.pmu.counters
        assert counters.l1d_miss_rate < 0.05

    def test_libquantum_streams(self, machine):
        run_kernel(machine, "libquantum", ops=30_000)
        counters = machine.pmu.counters
        assert counters.n_pf_l2 + counters.n_pf_l3 > 0

    def test_perlbench_other_heavy(self, machine):
        run_kernel(machine, "perlbench", ops=10_000)
        counters = machine.pmu.counters
        assert counters.n_other > counters.n_load_inst

    def test_deterministic(self):
        from repro import Machine, tiny_intel

        def counts(seed_unused):
            machine = Machine(tiny_intel())
            run_kernel(machine, "sjeng", ops=10_000)
            c = machine.pmu.counters
            return (c.n_l1d, c.n_mem, c.cycles)

        assert counts(0) == counts(1)
