"""The SQL front-end must reproduce the plan builders' TPC-H results
exactly — the strongest end-to-end check the SQL stack has."""

import pytest

from repro.workloads.tpch import run_query
from repro.workloads.tpch.sql_queries import (
    SQL_QUERY_NUMBERS,
    sql_text,
)


def normalised(rows):
    return [
        tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        for row in rows
    ]


class TestSqlAgainstPlans:
    @pytest.mark.parametrize("number", SQL_QUERY_NUMBERS)
    def test_sql_matches_plan_sqlite(self, number, sqlite_db):
        via_sql = sqlite_db.sql(sql_text(number))
        via_plan = run_query(sqlite_db, number)
        assert normalised(via_sql) == normalised(via_plan)

    @pytest.mark.parametrize("number", SQL_QUERY_NUMBERS)
    def test_sql_matches_plan_postgres(self, number, postgres_db):
        via_sql = postgres_db.sql(sql_text(number))
        via_plan = run_query(postgres_db, number)
        assert normalised(via_sql) == normalised(via_plan)

    def test_unavailable_number_raises(self):
        with pytest.raises(ValueError):
            sql_text(5)

    def test_coverage(self):
        assert set(SQL_QUERY_NUMBERS) == {1, 3, 6, 10, 12, 14, 19}
