"""Tests of the TPC-H generator and the 22 queries."""

import pytest

from repro.errors import ConfigError
from repro.workloads.tpch import (
    ALL_QUERY_NUMBERS,
    QUERIES,
    TpchData,
    run_query,
    tier,
)
from repro.workloads.tpch.datagen import NATIONS, REGIONS
from repro.workloads.tpch.schema import (
    PRIMARY_KEYS,
    SCHEMAS,
    d,
    l_key,
    ps_key,
)


class TestSchema:
    def test_all_tables_defined(self):
        assert set(SCHEMAS) == {
            "region", "nation", "supplier", "customer", "part",
            "partsupp", "orders", "lineitem",
        }

    def test_primary_keys_exist(self):
        for table, pk in PRIMARY_KEYS.items():
            assert pk in SCHEMAS[table]

    def test_date_helper(self):
        from datetime import date
        assert d(1994, 6, 1) == date(1994, 6, 1).toordinal()

    def test_synthetic_keys_unique(self):
        assert ps_key(1, 2) != ps_key(2, 1)
        assert l_key(1, 2) != l_key(2, 1)


class TestDatagen:
    def test_deterministic(self):
        a = TpchData("10MB", seed=1)
        b = TpchData("10MB", seed=1)
        assert a.lineitem == b.lineitem
        assert a.orders == b.orders

    def test_seed_changes_data(self):
        a = TpchData("10MB", seed=1)
        b = TpchData("10MB", seed=2)
        assert a.lineitem != b.lineitem

    def test_tier_scaling(self):
        small = TpchData("10MB")
        base = TpchData("100MB")
        assert base.n_rows_total > small.n_rows_total

    def test_unknown_tier(self):
        with pytest.raises(ConfigError):
            tier("5TB")

    def test_referential_integrity(self, tpch_small):
        data = tpch_small
        custkeys = {c[0] for c in data.customer}
        partkeys = {p[0] for p in data.part}
        suppkeys = {s[0] for s in data.supplier}
        orderkeys = {o[0] for o in data.orders}
        assert all(o[1] in custkeys for o in data.orders)
        assert all(l[1] in orderkeys for l in data.lineitem)
        assert all(l[2] in partkeys for l in data.lineitem)
        assert all(l[3] in suppkeys for l in data.lineitem)
        assert all(ps[1] in partkeys and ps[2] in suppkeys
                   for ps in data.partsupp)

    def test_lineitem_supplier_is_a_partsupp_pair(self, tpch_small):
        data = tpch_small
        pairs = {(ps[1], ps[2]) for ps in data.partsupp}
        assert all((l[2], l[3]) in pairs for l in data.lineitem)

    def test_four_suppliers_per_part(self, tpch_small):
        data = tpch_small
        assert len(data.partsupp) == 4 * len(data.part)

    def test_nation_region_fixed(self, tpch_small):
        assert len(tpch_small.nation) == len(NATIONS)
        assert len(tpch_small.region) == len(REGIONS)

    def test_some_customers_have_no_orders(self, tpch_small):
        ordering = {o[1] for o in tpch_small.orders}
        all_custkeys = {c[0] for c in tpch_small.customer}
        assert all_custkeys - ordering

    def test_date_ordering_invariants(self, tpch_small):
        for line in tpch_small.lineitem:
            shipdate, commitdate, receiptdate = line[11], line[12], line[13]
            assert receiptdate > shipdate
        order_dates = {o[0]: o[4] for o in tpch_small.orders}
        for line in tpch_small.lineitem:
            assert line[11] > order_dates[line[1]]

    def test_rows_match_schema_arity(self, tpch_small):
        for name, rows in tpch_small.tables().items():
            width = len(SCHEMAS[name])
            assert all(len(r) == width for r in rows)


class TestQueries:
    def test_registry_complete(self):
        assert ALL_QUERY_NUMBERS == tuple(range(1, 23))
        assert all(QUERIES[n].number == n for n in ALL_QUERY_NUMBERS)

    @pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
    def test_runs_and_consistent_across_engines(self, number, all_dbs):
        results = {}
        for name, db in all_dbs.items():
            rows = run_query(db, number)
            results[name] = sorted(
                tuple(round(v, 4) if isinstance(v, float) else v for v in r)
                for r in rows
            )
        assert results["sqlite"] == results["postgresql"] == results["mysql"]

    def test_q1_matches_reference(self, sqlite_db, tpch_small):
        """Q1 checked against a plain-Python reference aggregation."""
        rows = run_query(sqlite_db, 1)
        cutoff = d(1998, 12, 1) - 90
        expected = {}
        for line in tpch_small.lineitem:
            if line[11] > cutoff:
                continue
            key = (line[9], line[10])
            slot = expected.setdefault(key, [0.0, 0.0, 0])
            slot[0] += line[5]                       # qty
            slot[1] += line[6] * (1 - line[7])       # disc price
            slot[2] += 1
        got = {(r[0], r[1]): r for r in rows}
        assert set(got) == set(expected)
        for key, (qty, disc, count) in expected.items():
            row = got[key]
            assert row[2] == pytest.approx(qty)          # sum_qty
            assert row[4] == pytest.approx(disc)         # sum_disc_price
            assert row[9] == count                       # count_order

    def test_q6_matches_reference(self, postgres_db, tpch_small):
        rows = run_query(postgres_db, 6)
        lo, hi = d(1994, 1, 1), d(1994, 12, 31)
        expected = sum(
            line[6] * line[7] for line in tpch_small.lineitem
            if lo <= line[11] <= hi and 0.05 <= line[7] <= 0.07
            and line[5] < 24
        )
        assert rows[0][0] == pytest.approx(expected)

    def test_q4_matches_reference(self, mysql_db, tpch_small):
        rows = run_query(mysql_db, 4)
        lo, hi = d(1993, 7, 1), d(1993, 10, 1) - 1
        late_orders = {
            line[1] for line in tpch_small.lineitem if line[12] < line[13]
        }
        expected = {}
        for order in tpch_small.orders:
            if lo <= order[4] <= hi and order[0] in late_orders:
                expected[order[5]] = expected.get(order[5], 0) + 1
        assert {r[0]: r[1] for r in rows} == expected

    def test_q13_includes_orderless_customers(self, sqlite_db, tpch_small):
        rows = run_query(sqlite_db, 13)
        zero_bucket = [r for r in rows if r[0] == 0]
        assert zero_bucket, "customers without orders must appear (c_count=0)"
