"""Property-style equivalence suite: for every TPC-H query and every
engine profile, the optimizer's plan must return exactly the rows the
hand-built plan returns (order-sensitive only when the plan root pins
an order)."""

import pytest

from repro import Machine, tiny_intel
from repro.db import Database, mysql_like, postgres_like, sqlite_like
from repro.db.optimizer import Optimizer
from repro.workloads.tpch import TpchData, load_into
from repro.workloads.tpch.optimize import (
    _RecordingOptimizer,
    plan_fixes_order,
    rows_equal,
)
from repro.workloads.tpch.queries import QUERIES

SEED = 20200330
PROFILES = {
    "postgresql": postgres_like,
    "sqlite": sqlite_like,
    "mysql": mysql_like,
}
ALL_QUERIES = sorted(QUERIES)
MULTI_PASS = sorted(n for n in QUERIES if QUERIES[n].plan is None)


@pytest.fixture(scope="module", params=sorted(PROFILES))
def harness(request):
    engine = request.param
    machine = Machine(tiny_intel())
    db = Database(machine, PROFILES[engine](), name=f"opt-eq-{engine}")
    load_into(db, TpchData("10MB", seed=SEED))
    return db, Optimizer(db.catalog, db.profile)


@pytest.mark.parametrize("number", ALL_QUERIES)
def test_optimized_rows_identical(harness, number):
    db, optimizer = harness
    query = QUERIES[number]

    if query.plan is not None:
        result = optimizer.optimize(query.plan)
        expected = db.execute(query.plan)
        actual = db.execute(result.plan)
        ordered = plan_fixes_order(query.plan)
    else:
        # Multi-pass rewrites (Q2/Q11/Q15/Q22) go through the engine's
        # optimizer hook: every statement they plan is optimized.
        recorder = _RecordingOptimizer(optimizer)
        db.optimizer = None
        try:
            expected = query.run(db)
            db.optimizer = recorder
            actual = query.run(db)
        finally:
            db.optimizer = None
        assert recorder.results, f"Q{number}: optimizer hook never ran"
        ordered = True  # query.run returns presentation order

    assert rows_equal(expected, actual, ordered), (
        f"Q{number}: optimized rows differ"
    )


def test_multi_pass_queries_are_exactly_the_planless_ones():
    assert MULTI_PASS == [2, 11, 15, 22]


def test_plan_fixes_order_matches_tpch_shapes():
    """Sorted-root detection: Q1 (Sort root) is ordered, Q19's plain
    aggregate is not."""
    assert plan_fixes_order(QUERIES[1].plan)
    assert not plan_fixes_order(QUERIES[19].plan)
