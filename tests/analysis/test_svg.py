"""Structural tests for the SVG figure renderer (no browser offline, so
the geometry contract is asserted mechanically)."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.analysis.svg import (
    PALETTE,
    breakdown_rows_from_experiment,
    experiment_to_svg,
    stacked_bar_svg,
)
from repro.core.model import BREAKDOWN_COMPONENTS

NS = "{http://www.w3.org/2000/svg}"

ROWS = [
    ("alpha", {"E_L1D": 40.0, "E_Reg2L1D": 30.0, "E_L2": 5.0, "E_L3": 5.0,
               "E_mem": 5.0, "E_pf": 5.0, "E_stall": 5.0, "E_other": 5.0}),
    ("beta", {"E_L1D": 10.0, "E_Reg2L1D": 10.0, "E_L2": 10.0, "E_L3": 10.0,
              "E_mem": 20.0, "E_pf": 10.0, "E_stall": 20.0, "E_other": 10.0}),
]


def render(rows=ROWS, **kwargs):
    return stacked_bar_svg(rows, "Test figure", "subtitle", **kwargs)


class TestStackedBarSvg:
    def test_valid_xml(self):
        root = ET.fromstring(render())
        assert root.tag == f"{NS}svg"

    def test_all_marks_inside_viewbox(self):
        root = ET.fromstring(render())
        width = float(root.get("width"))
        height = float(root.get("height"))
        for rect in root.iter(f"{NS}rect"):
            x = float(rect.get("x", 0))
            y = float(rect.get("y", 0))
            assert 0 <= x <= width
            assert 0 <= y <= height
            assert x + float(rect.get("width")) <= width + 0.6
            assert y + float(rect.get("height")) <= height + 0.6

    def test_palette_covers_all_components(self):
        assert set(PALETTE) == set(BREAKDOWN_COMPONENTS)

    def test_every_component_has_legend_entry(self):
        svg = render()
        for component in BREAKDOWN_COMPONENTS:
            assert component.replace("E_", "") in svg

    def test_segments_carry_tooltips(self):
        root = ET.fromstring(render())
        titles = [t.text for t in root.iter(f"{NS}title")]
        assert any("E_L1D" in t for t in titles)
        assert any("%" in t for t in titles)

    def test_segment_widths_sum_to_plot_width(self):
        """Per-bar segment spans (incl. gaps) tile the plot width."""
        root = ET.fromstring(render(rows=[ROWS[0]]))
        spans = []
        for node in list(root.iter(f"{NS}rect")) + list(root.iter(f"{NS}path")):
            title = node.find(f"{NS}title")
            if title is None or "—" not in (title.text or ""):
                continue
            share = float(title.text.split("—")[1].strip().rstrip("%"))
            spans.append(share)
        assert sum(spans) == pytest.approx(100.0, abs=0.5)

    def test_direct_label_is_selective(self):
        """One headline label per bar, not a number on every segment."""
        svg = render()
        assert svg.count("L1D+st") == len(ROWS)

    def test_text_uses_ink_not_series_colors(self):
        root = ET.fromstring(render())
        for text in root.iter(f"{NS}text"):
            assert text.get("fill") in ("#0b0b0b", "#52514e")

    def test_zero_total_row_skipped(self):
        svg = render(rows=[("empty", {c: 0.0 for c in BREAKDOWN_COMPONENTS})])
        root = ET.fromstring(svg)
        titles = [t.text for t in root.iter(f"{NS}title")]
        assert not any("—" in (t or "") for t in titles)

    def test_title_escaping(self):
        svg = stacked_bar_svg(ROWS, "a <b> & \"c\"")
        ET.fromstring(svg)  # must stay valid XML

    def test_apostrophe_in_title(self):
        """Single quotes appear in real titles (e.g. "§2.3's") and the
        attributes are single-quoted — regression for a malformed file."""
        svg = stacked_bar_svg(ROWS, "§2.3's open question")
        root = ET.fromstring(svg)
        assert "§2.3's open question" in root.get("aria-label")


class TestExperimentExtraction:
    def flat(self):
        return ExperimentResult("x", "flat", "", {"w1": ROWS[0][1]})

    def nested(self):
        return ExperimentResult("x", "nested", "",
                                {"sqlite": {"q1": ROWS[0][1]}})

    def test_flat_rows(self):
        rows = breakdown_rows_from_experiment(self.flat())
        assert rows == [("w1", ROWS[0][1])]

    def test_nested_rows(self):
        rows = breakdown_rows_from_experiment(self.nested())
        assert rows == [("sqlite/q1", ROWS[0][1])]

    def test_non_breakdown_returns_none(self):
        result = ExperimentResult("x", "t", "", {"a": 1.0, "b": {"c": 2}})
        assert breakdown_rows_from_experiment(result) is None

    def test_experiment_to_svg(self):
        svg = experiment_to_svg(self.nested())
        assert svg is not None
        ET.fromstring(svg)

    def test_experiment_to_svg_none_for_tables(self):
        result = ExperimentResult("tab02", "t", "", {"36": {"dE_L1D": 1.3}})
        assert experiment_to_svg(result) is None
