"""Tests of the experiment layer (cheap experiments run fully; shape
checks are asserted — the slow sweeps are exercised by benchmarks/)."""

import pytest

from repro.analysis import EXPERIMENTS, Lab, LabConfig, tab01, tab02, tab03
from repro.analysis.experiments import ExperimentResult, fig13, tab05


@pytest.fixture(scope="module")
def lab():
    return Lab(LabConfig(scale=16))


class TestLab:
    def test_machine_memoised(self, lab):
        assert lab.machine is lab.machine

    def test_calibration_memoised(self, lab):
        assert lab.calibration() is lab.calibration()

    def test_calibration_per_pstate(self, lab):
        assert lab.calibration(36) is not lab.calibration(24)

    def test_database_memoised(self, lab):
        assert lab.database("sqlite") is lab.database("sqlite")

    def test_database_per_engine(self, lab):
        assert lab.database("sqlite") is not lab.database("mysql")


class TestRegistry:
    def test_all_fifteen_experiments(self):
        assert set(EXPERIMENTS) == {
            "tab01", "tab02", "tab03", "tab05",
            "fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
            "fig11", "fig13", "sec5", "ext_nosql", "ext_writes",
        }

    def test_result_type(self, lab):
        result = tab01(lab)
        assert isinstance(result, ExperimentResult)
        assert result.text
        assert result.data


class TestCheapExperiments:
    def test_tab01_checks_pass(self, lab):
        result = tab01(lab)
        assert result.all_checks_pass, result.failed_checks()

    def test_tab02_checks_pass(self, lab):
        result = tab02(lab)
        assert result.all_checks_pass, result.failed_checks()

    def test_tab03_checks_pass(self, lab):
        result = tab03(lab)
        assert result.all_checks_pass, result.failed_checks()

    def test_tab05_checks_pass(self, lab):
        result = tab05(lab)
        assert result.all_checks_pass, result.failed_checks()

    def test_fig13_subset_checks_pass(self, lab):
        result = fig13(lab, queries=(1, 3, 6, 12))
        assert result.all_checks_pass, result.failed_checks()

    def test_failed_checks_listing(self):
        result = ExperimentResult("x", "t", "text", {}, {"a": True, "b": False})
        assert not result.all_checks_pass
        assert result.failed_checks() == ["b"]


class TestSweepQueries:
    def test_subset_of_all(self):
        from repro.analysis import SWEEP_QUERIES
        from repro.workloads.tpch import ALL_QUERY_NUMBERS

        assert set(SWEEP_QUERIES) <= set(ALL_QUERY_NUMBERS)
        assert len(SWEEP_QUERIES) >= 6

    def test_every_experiment_takes_a_lab(self):
        import inspect

        for name, fn in EXPERIMENTS.items():
            params = list(inspect.signature(fn).parameters)
            assert params[0] == "lab", name
