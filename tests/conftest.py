"""Shared fixtures.

Machines are cheap to build, so most fixtures are function-scoped for
isolation; the expensive artefacts (TPC-H data, loaded databases,
calibration) are session-scoped and used read-only.
"""

from __future__ import annotations

import pytest

from repro import Machine, arm1176jzf_s, tiny_intel
from repro.core.calibration import calibrate
from repro.db import Database, mysql_like, postgres_like, sqlite_like
from repro.workloads.tpch import TpchData, load_into


@pytest.fixture
def machine() -> Machine:
    """A fresh 16x-scaled Intel machine."""
    return Machine(tiny_intel())


@pytest.fixture
def arm_machine() -> Machine:
    """A fresh full-size ARM1176JZF-S machine (with DTCM)."""
    return Machine(arm1176jzf_s())


@pytest.fixture
def quiet_machine() -> Machine:
    """A tiny Intel machine with measurement noise disabled."""
    import dataclasses

    config = dataclasses.replace(tiny_intel(), measurement_noise=0.0)
    return Machine(config)


@pytest.fixture
def quiet_arm() -> Machine:
    """A full-size ARM machine with measurement noise disabled."""
    import dataclasses

    config = dataclasses.replace(arm1176jzf_s(), measurement_noise=0.0)
    return Machine(config)


@pytest.fixture(scope="session")
def tpch_small() -> TpchData:
    """The 10MB tier dataset (smallest; fast to load)."""
    return TpchData("10MB")


@pytest.fixture(scope="session")
def session_machine() -> Machine:
    """One shared machine for read-only query tests."""
    return Machine(tiny_intel())


def _loaded(machine: Machine, profile, data: TpchData, name: str) -> Database:
    db = Database(machine, profile, name=name)
    load_into(db, data)
    return db


@pytest.fixture(scope="session")
def sqlite_db(session_machine, tpch_small) -> Database:
    return _loaded(session_machine, sqlite_like(), tpch_small, "t-sqlite")


@pytest.fixture(scope="session")
def postgres_db(session_machine, tpch_small) -> Database:
    return _loaded(session_machine, postgres_like(), tpch_small, "t-postgres")


@pytest.fixture(scope="session")
def mysql_db(session_machine, tpch_small) -> Database:
    return _loaded(session_machine, mysql_like(), tpch_small, "t-mysql")


@pytest.fixture(scope="session")
def all_dbs(sqlite_db, postgres_db, mysql_db):
    return {"sqlite": sqlite_db, "postgresql": postgres_db, "mysql": mysql_db}


@pytest.fixture(scope="session")
def session_calibration():
    """One calibration on its own machine (used read-only)."""
    machine = Machine(tiny_intel(), seed=7)
    return machine, calibrate(machine)
