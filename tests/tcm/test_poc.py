"""Tests of the Figure 13 proof-of-concept experiment."""

import pytest

from repro.tcm.poc import QueryComparison, measure_peak_saving, run_poc


class TestQueryComparison:
    def test_savings_math(self):
        c = QueryComparison(1, energy_plain_j=10.0, energy_tcm_j=9.0,
                            time_plain_s=2.0, time_tcm_s=1.9)
        assert c.energy_saving_pct == pytest.approx(10.0)
        assert c.perf_improvement_pct == pytest.approx(5.0)

    def test_zero_baselines(self):
        c = QueryComparison(1, 0.0, 1.0, 0.0, 1.0)
        assert c.energy_saving_pct == 0.0
        assert c.perf_improvement_pct == 0.0


class TestPeakSaving:
    def test_near_ten_percent(self, quiet_arm):
        assert measure_peak_saving(quiet_arm) == pytest.approx(10.0, abs=1.5)


class TestRunPoc:
    def test_subset_run(self):
        result = run_poc(queries=(1, 6, 12))
        assert len(result.comparisons) == 3
        assert result.average_energy_saving_pct > 2.0
        assert result.peak_saving_pct > 5.0
        assert all(c.energy_saving_pct > -2.0 for c in result.comparisons)

    def test_fraction_of_peak(self):
        result = run_poc(queries=(1, 6))
        expected = 100 * result.average_energy_saving_pct / result.peak_saving_pct
        assert result.fraction_of_peak_pct == pytest.approx(expected)
