"""Tests of the DTCM co-design strategies (section 4.2)."""

import pytest

from repro.db import Database
from repro.db.profiles import SMALL, sqlite_like
from repro.errors import ConfigError
from repro.tcm.codesign import apply_codesign, scale_budgets
from repro.workloads.tpch import TpchData, load_into, run_query


@pytest.fixture
def arm_db(arm_machine):
    db = Database(arm_machine, sqlite_like(SMALL), name="arm-sqlite")
    load_into(db, TpchData("10MB"))
    return arm_machine, db


class TestBudgets:
    def test_full_dtcm_split(self, arm_machine):
        buffer_b, vars_b, btree_b = scale_budgets(arm_machine)
        assert buffer_b == 16 * 1024
        assert vars_b == 4 * 1024
        assert btree_b == 12 * 1024

    def test_requires_tcm(self, machine):
        with pytest.raises(ConfigError):
            scale_budgets(machine)


class TestApply:
    def test_placement_report(self, arm_db):
        arm_machine, db = arm_db
        report = apply_codesign(db, arm_machine)
        assert report.state_bytes == 4096
        assert report.btree_nodes_relocated > 0

    def test_state_region_in_tcm(self, arm_db):
        arm_machine, db = arm_db
        apply_codesign(db, arm_machine)
        assert db.state_region.base >= 1 << 40
        assert db.state_overflow_region is not None

    def test_queries_still_correct(self, arm_db):
        arm_machine, db = arm_db
        before = sorted(run_query(db, 1))
        apply_codesign(db, arm_machine)
        after = sorted(run_query(db, 1))
        assert before == after

    def test_tcm_loads_appear(self, arm_db):
        arm_machine, db = arm_db
        apply_codesign(db, arm_machine)
        arm_machine.reset_measurements()
        run_query(db, 6)
        assert arm_machine.pmu.counters.n_tcm_load > 0

    def test_within_dtcm_capacity(self, arm_db):
        arm_machine, db = arm_db
        apply_codesign(db, arm_machine)
        assert arm_machine.tcm.bytes_live <= 32 * 1024
