"""Integration-level tests of the Machine facade (settling, energy
conservation, resets, disk, measurement noise)."""

import pytest

from repro import Machine, tiny_intel
from repro.errors import ConfigError
from repro.sim.energy import active_energy_joules


class TestSettling:
    def test_stats_are_idempotent(self, machine):
        machine.add(100)
        first = machine.stats()
        second = machine.stats()
        assert first.energy_package_j == second.energy_package_j
        assert first.time_s == second.time_s

    def test_energy_matches_direct_pricing(self, quiet_machine):
        """RAPL totals equal counters priced with the hidden table."""
        machine = quiet_machine
        region = machine.address_space.alloc_lines(64, "w")
        for i in range(64):
            machine.load(region.line(i), dependent=True)
        machine.store(region.base)
        machine.add(50)
        stats = machine.stats()
        priced = active_energy_joules(
            stats.counters, machine.config.energy_table,
            machine.config.pstates.vf2(machine.pstate),
        )
        background = machine.config.background
        expected_core = priced.core_active + background.core * stats.busy_s
        assert stats.energy_core_j == pytest.approx(expected_core, rel=1e-9)

    @staticmethod
    def _active_core(machine):
        """Core energy with the background (time-proportional) removed."""
        stats = machine.stats()
        return stats.energy_core_j - machine.config.background.core * stats.busy_s

    def test_pstate_switch_prices_at_old_state(self, quiet_machine):
        """Work done before a switch is priced at the old P-state."""
        machine = quiet_machine
        machine.add(1000)
        machine.set_pstate(12)     # forces a settle first
        e_after_switch = self._active_core(machine)
        # Price the same work entirely at P12 for comparison:
        low = Machine(machine.config, pstate=12)
        low.add(1000)
        low.settle()
        assert e_after_switch > self._active_core(low)

    def test_mixed_pstate_run_between_bounds(self, quiet_machine):
        machine = quiet_machine
        machine.add(10_000)
        machine.set_pstate(12)
        machine.add(10_000)
        machine.settle()
        total = self._active_core(machine)

        hi = Machine(machine.config, pstate=36)
        hi.add(20_000)
        hi.settle()
        lo = Machine(machine.config, pstate=12)
        lo.add(20_000)
        lo.settle()
        assert self._active_core(lo) < total < self._active_core(hi)


class TestIdleAndDisk:
    def test_idle_advances_time_not_busy(self, machine):
        machine.idle(0.5)
        assert machine.time_s == pytest.approx(0.5)
        assert machine.busy_s == 0.0
        assert machine.idle_s == pytest.approx(0.5)

    def test_idle_rejects_negative(self, machine):
        with pytest.raises(ConfigError):
            machine.idle(-1.0)

    def test_disk_read_idles_cpu(self, machine):
        machine.disk_read(0, 4096)
        assert machine.idle_s > 0
        assert machine.busy_s == 0

    def test_sequential_disk_faster_than_random(self, machine):
        machine.disk_read(10, 4096)
        machine.disk_read(11, 4096)   # sequential
        t_seq = machine.idle_s
        machine.disk_read(500, 4096)  # random
        t_rand = machine.idle_s - t_seq
        assert t_rand > (t_seq / 2)

    def test_cstates_reduce_idle_energy(self):
        a = Machine(tiny_intel())
        a.set_cstates(False)
        a.idle(1.0)
        b = Machine(tiny_intel())
        b.set_cstates(True)
        b.idle(1.0)
        assert b.rapl.energy_package() < a.rapl.energy_package()


class TestResets:
    def test_reset_measurements_keeps_caches(self, machine):
        region = machine.address_space.alloc_lines(4, "w")
        machine.load(region.base)
        machine.reset_measurements()
        assert machine.pmu.counters.instructions == 0
        assert machine.load(region.base) == 1  # LEVEL_L1D: still warm

    def test_cold_reset_flushes_caches(self, machine):
        region = machine.address_space.alloc_lines(4, "w")
        machine.load(region.base)
        machine.cold_reset()
        assert machine.load(region.base) == 4  # LEVEL_MEM

    def test_reset_clears_clocks(self, machine):
        machine.add(100)
        machine.idle(0.1)
        machine.reset_measurements()
        assert machine.time_s == 0.0
        assert machine.busy_s == 0.0
        assert machine.idle_s == 0.0


class TestNoise:
    def test_noise_is_deterministic_per_seed(self):
        a = Machine(tiny_intel(), seed=42)
        b = Machine(tiny_intel(), seed=42)
        assert [a.measurement_noise_factor() for _ in range(5)] == [
            b.measurement_noise_factor() for _ in range(5)
        ]

    def test_noise_differs_across_seeds(self):
        a = Machine(tiny_intel(), seed=1)
        b = Machine(tiny_intel(), seed=2)
        assert a.measurement_noise_factor() != b.measurement_noise_factor()

    def test_zero_noise_config(self, quiet_machine):
        assert quiet_machine.measurement_noise_factor() == 1.0

    def test_noise_near_one(self):
        machine = Machine(tiny_intel(), seed=3)
        factors = [machine.measurement_noise_factor() for _ in range(100)]
        assert all(0.8 < f < 1.2 for f in factors)


class TestArmPreset:
    def test_no_l2_l3(self, arm_machine):
        assert arm_machine.hierarchy.l2 is None
        assert arm_machine.hierarchy.l3 is None

    def test_single_pstate(self, arm_machine):
        assert arm_machine.config.pstates.lowest == 7
        assert arm_machine.config.pstates.highest == 7
        assert arm_machine.frequency_ghz() == pytest.approx(0.7)

    def test_tcm_allocator_present(self, arm_machine):
        assert arm_machine.tcm is not None
        assert arm_machine.tcm.bytes_free == 32 * 1024

    def test_in_order_no_overlap(self, arm_machine):
        """mlp=1: independent misses expose nearly full latency."""
        region = arm_machine.address_space.alloc_lines(16, "w")
        arm_machine.reset_measurements()
        for i in range(16):
            arm_machine.load(region.line(i))
        counters = arm_machine.pmu.counters
        assert counters.stall_cycles > counters.cycles * 0.8
