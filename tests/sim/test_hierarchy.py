"""Unit tests for the multi-level hierarchy (step-by-step replication)."""

from repro.sim.address_space import LINE_SIZE, Region
from repro.sim.cache import CacheLevel
from repro.sim.hierarchy import (
    LEVEL_L1D,
    LEVEL_L2,
    LEVEL_MEM,
    LEVEL_TCM,
    MemoryHierarchy,
)
from repro.sim.pmu import PmuCounters
from repro.sim.prefetcher import StreamPrefetcher


def build(l2=True, l3=True, tcm_region=None, prefetch=False):
    counters = PmuCounters()
    hierarchy = MemoryHierarchy(
        l1d=CacheLevel("L1D", 4 * 64 * 2, 2),     # 8 lines
        l2=CacheLevel("L2", 8 * 64 * 4, 4) if l2 else None,   # 32 lines
        l3=CacheLevel("L3", 16 * 64 * 8, 8) if l3 else None,  # 128 lines
        prefetcher=StreamPrefetcher(enabled=prefetch),
        counters=counters,
    )
    if tcm_region is not None:
        hierarchy.tcm_region = tcm_region
    return hierarchy, counters


def addr(line: int) -> int:
    return line * LINE_SIZE


class TestLoadPath:
    def test_cold_load_comes_from_memory(self):
        h, c = build()
        assert h.load(addr(5)) == LEVEL_MEM
        assert c.n_l1d == 1 and c.n_l2 == 1 and c.n_l3 == 1 and c.n_mem == 1

    def test_replication_fills_all_levels(self):
        h, _ = build()
        h.load(addr(5))
        assert h.l1d.contains(5)
        assert h.l2.contains(5)
        assert h.l3.contains(5)

    def test_second_load_hits_l1(self):
        h, c = build()
        h.load(addr(5))
        assert h.load(addr(5)) == LEVEL_L1D
        assert c.l1d_hits == 1

    def test_l2_hit_after_l1_eviction(self):
        h, _ = build()
        h.load(addr(0))
        # Evict line 0 from the 2-way L1 set (set = line % 4).
        h.load(addr(4))
        h.load(addr(8))
        assert h.load(addr(0)) == LEVEL_L2

    def test_same_line_different_offsets(self):
        h, c = build()
        h.load(addr(5))
        assert h.load(addr(5) + 8) == LEVEL_L1D
        assert h.load(addr(5) + 56) == LEVEL_L1D

    def test_no_l2_machine_goes_to_memory(self):
        h, c = build(l2=False, l3=False)
        assert h.load(addr(3)) == LEVEL_MEM
        assert c.n_l2 == 0 and c.n_l3 == 0 and c.n_mem == 1

    def test_counters_sum_consistent(self):
        h, c = build()
        for line in range(200):
            h.load(addr(line))
        assert c.n_l1d == 200
        assert c.l1d_hits + c.n_l2 == c.n_l1d
        assert c.l2_hits + c.n_l3 == c.n_l2
        assert c.l3_hits + c.n_mem == c.n_l3


class TestStorePath:
    def test_store_hit(self):
        h, c = build()
        h.load(addr(1))
        assert h.store(addr(1))
        assert c.n_store_l1d_hit == 1

    def test_store_miss_write_allocates(self):
        h, c = build()
        assert not h.store(addr(9))
        assert h.l1d.contains(9)
        assert c.n_store == 1
        assert c.n_store_l1d_hit == 0
        assert c.n_mem == 1  # the RFO fetched the line

    def test_dirty_writeback_counted(self):
        h, c = build()
        # Dirty a line, then stream over its set to force eviction.
        h.store(addr(0))
        h.load(addr(4))
        h.load(addr(8))
        assert c.n_writeback >= 1


class TestTcm:
    def test_tcm_load_bypasses_caches(self):
        region = Region(base=1 << 40, size=1024, label="tcm")
        h, c = build(tcm_region=region)
        assert h.load(region.base + 64) == LEVEL_TCM
        assert c.n_tcm_load == 1
        assert c.n_l1d == 0

    def test_tcm_store(self):
        region = Region(base=1 << 40, size=1024)
        h, c = build(tcm_region=region)
        assert h.store(region.base)
        assert c.n_tcm_store == 1
        assert c.n_store == 0

    def test_non_tcm_address_unaffected(self):
        region = Region(base=1 << 40, size=1024)
        h, c = build(tcm_region=region)
        h.load(addr(3))
        assert c.n_tcm_load == 0
        assert c.n_l1d == 1


class TestPrefetcher:
    def test_sequential_misses_stage_lines(self):
        h, c = build(prefetch=True)
        for line in range(20):
            h.load(addr(line))
        assert c.n_pf_l2 + c.n_pf_l3 > 0

    def test_prefetch_into_l2_comes_from_l3(self):
        h, c = build(prefetch=True)
        # Pre-fill L3 with the whole range, cold L1/L2.
        for line in range(30):
            h.load(addr(line))
        h.l1d.flush()
        h.l2.flush()
        h.prefetcher.reset()
        before = c.n_pf_l2
        for line in range(30):
            h.load(addr(line))
        assert c.n_pf_l2 > before

    def test_prefetched_line_hits_l2(self):
        h, _ = build(prefetch=True)
        for line in range(10):
            h.load(addr(line))
        # Something ahead of the stream should now be on chip.
        staged = [
            line for line in range(10, 30)
            if h.l2.contains(line) or h.l3.contains(line)
        ]
        assert staged

    def test_store_misses_do_not_train(self):
        # The prefetcher watches demand-*load* misses only (see the
        # module docstrings of hierarchy and prefetcher): a sequential
        # run of store (RFO) misses must neither train a stream nor
        # issue prefetches, while the same run of loads does.
        h, c = build(prefetch=True)
        for line in range(20):
            h.store(addr(line))
        assert h.prefetcher.n_trained == 0
        assert c.n_pf_l2 == 0 and c.n_pf_l3 == 0
        h2, c2 = build(prefetch=True)
        for line in range(20):
            h2.load(addr(line))
        assert h2.prefetcher.n_trained > 0
        assert c2.n_pf_l2 + c2.n_pf_l3 > 0

    def test_flush_clears_everything(self):
        h, _ = build()
        h.load(addr(1))
        h.flush()
        assert not h.l1d.contains(1)
        assert not h.l2.contains(1)
        assert not h.l3.contains(1)
