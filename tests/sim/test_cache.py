"""Unit and property tests for the set-associative cache level."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.sim.cache import CacheLevel


def small_cache(assoc=2, sets=4) -> CacheLevel:
    return CacheLevel("T", size=assoc * sets * 64, assoc=assoc)


class TestGeometry:
    def test_set_count(self):
        cache = CacheLevel("L1", size=32 * 1024, assoc=8)
        assert cache.n_sets == 64

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ConfigError):
            CacheLevel("bad", size=1000, assoc=3)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheLevel("bad", size=3 * 64 * 2, assoc=2)  # 3 sets

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigError):
            CacheLevel("bad", size=0, assoc=1)


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(7)
        cache.fill(7)
        assert cache.lookup(7)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = small_cache(assoc=2, sets=1)
        cache.fill(0)
        cache.fill(1)
        cache.lookup(0)       # 0 becomes MRU
        victim = cache.fill(2)  # must evict 1
        assert victim == (1, False)
        assert cache.contains(0)
        assert not cache.contains(1)

    def test_fill_existing_no_eviction(self):
        cache = small_cache(assoc=2, sets=1)
        cache.fill(0)
        cache.fill(1)
        assert cache.fill(0) is None
        assert cache.occupancy == 2

    def test_set_isolation(self):
        """Lines mapping to different sets never evict each other."""
        cache = small_cache(assoc=1, sets=4)
        for line in range(4):
            cache.fill(line)
        assert all(cache.contains(line) for line in range(4))

    def test_conflict_within_set(self):
        cache = small_cache(assoc=1, sets=4)
        cache.fill(0)
        victim = cache.fill(4)  # same set (4 % 4 == 0)
        assert victim == (0, False)


class TestDirty:
    def test_write_hit_marks_dirty(self):
        cache = small_cache(assoc=1, sets=1)
        cache.fill(0)
        cache.lookup(0, write=True)
        victim = cache.fill(1)
        assert victim == (0, True)
        assert cache.dirty_evictions == 1

    def test_fill_dirty(self):
        cache = small_cache(assoc=1, sets=1)
        cache.fill(0, dirty=True)
        assert cache.fill(1) == (0, True)

    def test_fill_merges_dirty_bit(self):
        cache = small_cache(assoc=2, sets=1)
        cache.fill(0)
        cache.fill(0, dirty=True)  # refresh with dirty
        cache.fill(1)
        victim = cache.fill(2)
        assert victim == (0, True)

    def test_clean_eviction_not_counted_dirty(self):
        cache = small_cache(assoc=1, sets=1)
        cache.fill(0)
        cache.fill(1)
        assert cache.dirty_evictions == 0


class TestMaintenance:
    def test_invalidate(self):
        cache = small_cache()
        cache.fill(3)
        assert cache.invalidate(3)
        assert not cache.contains(3)
        assert not cache.invalidate(3)

    def test_flush_keeps_stats(self):
        cache = small_cache()
        cache.lookup(1)
        cache.fill(1)
        cache.flush()
        assert cache.occupancy == 0
        assert cache.misses == 1

    def test_reset_stats(self):
        cache = small_cache()
        cache.lookup(1)
        cache.reset_stats()
        assert cache.misses == 0
        assert cache.hits == 0

    def test_hit_rate(self):
        cache = small_cache()
        assert cache.hit_rate() == 0.0
        cache.lookup(1)
        cache.fill(1)
        cache.lookup(1)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_contains_does_not_mutate(self):
        cache = small_cache(assoc=2, sets=1)
        cache.fill(0)
        cache.fill(1)
        cache.contains(0)  # must NOT refresh LRU
        victim = cache.fill(2)
        assert victim == (0, False)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=300))
    def test_occupancy_never_exceeds_capacity(self, lines):
        cache = small_cache(assoc=2, sets=4)
        for line in lines:
            if not cache.lookup(line):
                cache.fill(line)
        assert cache.occupancy <= 8
        assert cache.hits + cache.misses == len(lines)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=300))
    def test_second_access_to_mru_always_hits(self, lines):
        cache = small_cache(assoc=2, sets=4)
        for line in lines:
            if not cache.lookup(line):
                cache.fill(line)
            assert cache.lookup(line)  # immediately re-accessed: hit

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                    max_size=100))
    def test_working_set_within_capacity_never_misses_twice(self, lines):
        """Once a <=capacity working set is resident, it stays resident."""
        cache = small_cache(assoc=8, sets=1)
        working_set = set(lines)
        assert len(working_set) <= 8
        for line in working_set:
            cache.fill(line)
        cache.reset_stats()
        for line in lines:
            cache.lookup(line)
        assert cache.misses == 0
