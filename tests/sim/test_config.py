"""Tests of the machine presets and config validation."""

import pytest

from repro import CacheConfig, arm1176jzf_s, intel_i7_4790, tiny_arm, tiny_intel
from repro.errors import ConfigError


class TestCacheConfig:
    def test_scaled_divides(self):
        assert CacheConfig(32 * 1024, 8).scaled(16).size == 2048

    def test_scaled_floor(self):
        tiny = CacheConfig(4096, 8).scaled(1000)
        assert tiny.size == 8 * 64 * 2  # two sets minimum

    def test_scale_one_identity(self):
        base = CacheConfig(32 * 1024, 8)
        assert base.scaled(1) == base


class TestIntelPreset:
    def test_paper_geometry(self):
        config = intel_i7_4790()
        assert config.l1d.size == 32 * 1024
        assert config.l2.size == 256 * 1024
        assert config.l3.size == 8 * 1024 * 1024

    def test_pstate_range(self):
        config = intel_i7_4790()
        assert config.pstates.lowest == 8
        assert config.pstates.highest == 36

    def test_scale_shrinks_everything(self):
        full = intel_i7_4790()
        scaled = intel_i7_4790(scale=8)
        assert scaled.l1d.size == full.l1d.size // 8
        assert scaled.l3.size == full.l3.size // 8

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            intel_i7_4790(scale=0)

    def test_name_reflects_scale(self):
        assert "s16" in intel_i7_4790(scale=16).name
        assert "s" not in intel_i7_4790().name.split("4790")[1]

    def test_with_pstate_range(self):
        narrowed = intel_i7_4790().with_pstate_range(12, 24)
        assert narrowed.pstates.lowest == 12
        assert narrowed.pstates.highest == 24


class TestArmPreset:
    def test_no_l2_l3_with_tcm(self):
        config = arm1176jzf_s()
        assert config.l2 is None and config.l3 is None
        assert config.tcm is not None
        assert config.tcm.size == 32 * 1024

    def test_in_order_timing(self):
        timing = arm1176jzf_s().timing
        assert timing.mlp == 1
        assert timing.load_issue == 1.0

    def test_scaled_tcm(self):
        assert arm1176jzf_s(scale=4).tcm.size == 8 * 1024

    def test_l3_requires_l2(self):
        import dataclasses
        config = intel_i7_4790()
        with pytest.raises(ConfigError):
            dataclasses.replace(config, l2=None)

    def test_tiny_presets_buildable(self):
        from repro import Machine
        Machine(tiny_intel())
        Machine(tiny_arm())
