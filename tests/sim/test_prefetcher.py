"""Unit tests for the stream prefetcher."""

from repro.sim.prefetcher import StreamPrefetcher


def feed(pf, lines):
    """Feed lines; collect all prefetch targets."""
    l2, l3 = [], []
    for line in lines:
        a, b = pf.observe(line)
        l2.extend(a)
        l3.extend(b)
    return l2, l3


class TestTraining:
    def test_no_prefetch_before_threshold(self):
        pf = StreamPrefetcher(train_threshold=3)
        l2, l3 = feed(pf, [10, 11])
        assert not l2 and not l3

    def test_prefetch_after_threshold(self):
        pf = StreamPrefetcher(train_threshold=2, degree=4, l3_extra=4)
        l2, l3 = feed(pf, [10, 11, 12])
        assert l2 and l3
        assert min(l2) > 11  # ahead of the last trained position

    def test_random_access_never_trains(self):
        pf = StreamPrefetcher(train_threshold=2)
        l2, l3 = feed(pf, [5, 100, 3, 77, 41, 9])
        assert not l2 and not l3

    def test_descending_never_trains(self):
        pf = StreamPrefetcher(train_threshold=2)
        l2, l3 = feed(pf, [50, 49, 48, 47])
        assert not l2 and not l3


class TestWindow:
    def test_targets_ahead_of_demand(self):
        pf = StreamPrefetcher(train_threshold=2, degree=2, l3_extra=3)
        l2, l3 = feed(pf, list(range(100, 110)))
        assert all(t > 100 for t in l2 + l3)

    def test_no_duplicate_prefetches(self):
        pf = StreamPrefetcher(train_threshold=2, degree=4, l3_extra=4)
        l2, l3 = feed(pf, list(range(0, 50)))
        targets = l2 + l3
        assert len(targets) == len(set(targets))

    def test_l3_window_beyond_l2(self):
        pf = StreamPrefetcher(train_threshold=2, degree=2, l3_extra=2)
        pf.observe(10)
        pf.observe(11)
        l2, l3 = pf.observe(12)
        assert max(l2, default=0) < min(l3, default=1 << 60)

    def test_repeated_line_is_neutral(self):
        pf = StreamPrefetcher(train_threshold=2)
        feed(pf, [10, 11, 12])
        l2, l3 = pf.observe(12)  # repeated miss on same line
        assert not l2 and not l3


class TestMultipleStreams:
    def test_interleaved_streams_both_train(self):
        pf = StreamPrefetcher(n_streams=4, train_threshold=2)
        sequence = []
        for i in range(6):
            sequence.append(100 + i)
            sequence.append(5000 + i)
        l2, l3 = feed(pf, sequence)
        targets = set(l2 + l3)
        assert any(t > 5000 for t in targets)
        assert any(100 < t < 5000 for t in targets)

    def test_stream_capacity_eviction(self):
        pf = StreamPrefetcher(n_streams=1, train_threshold=2)
        feed(pf, [10, 11, 12])          # trained
        feed(pf, [9000])                # evicts the only tracker
        l2, l3 = pf.observe(13)         # old stream forgotten
        assert not l2 and not l3


class TestControls:
    def test_disabled(self):
        pf = StreamPrefetcher(enabled=False)
        l2, l3 = feed(pf, list(range(20)))
        assert not l2 and not l3

    def test_zero_streams(self):
        pf = StreamPrefetcher(n_streams=0)
        l2, l3 = feed(pf, list(range(20)))
        assert not l2 and not l3

    def test_reset_forgets_training(self):
        pf = StreamPrefetcher(train_threshold=2)
        feed(pf, [10, 11, 12])
        pf.reset()
        l2, l3 = pf.observe(13)
        assert not l2 and not l3
