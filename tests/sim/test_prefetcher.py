"""Unit tests for the stream prefetcher."""

from repro.sim.prefetcher import StreamPrefetcher


def feed(pf, lines):
    """Feed lines; collect all prefetch targets."""
    l2, l3 = [], []
    for line in lines:
        a, b = pf.observe(line)
        l2.extend(a)
        l3.extend(b)
    return l2, l3


class TestTraining:
    def test_no_prefetch_before_threshold(self):
        pf = StreamPrefetcher(train_threshold=3)
        l2, l3 = feed(pf, [10, 11])
        assert not l2 and not l3

    def test_prefetch_after_threshold(self):
        pf = StreamPrefetcher(train_threshold=2, degree=4, l3_extra=4)
        l2, l3 = feed(pf, [10, 11, 12])
        assert l2 and l3
        assert min(l2) > 11  # ahead of the last trained position

    def test_random_access_never_trains(self):
        pf = StreamPrefetcher(train_threshold=2)
        l2, l3 = feed(pf, [5, 100, 3, 77, 41, 9])
        assert not l2 and not l3

    def test_descending_never_trains(self):
        pf = StreamPrefetcher(train_threshold=2)
        l2, l3 = feed(pf, [50, 49, 48, 47])
        assert not l2 and not l3


class TestWindow:
    def test_targets_ahead_of_demand(self):
        pf = StreamPrefetcher(train_threshold=2, degree=2, l3_extra=3)
        l2, l3 = feed(pf, list(range(100, 110)))
        assert all(t > 100 for t in l2 + l3)

    def test_no_duplicate_prefetches_within_a_kind(self):
        # A line is issued at most once toward each level: once into L3
        # when it enters the far window, once toward L2 when demand
        # advances enough that it falls inside the near window (the
        # L3->L2 promotion).  Within a kind there are no repeats.
        pf = StreamPrefetcher(train_threshold=2, degree=4, l3_extra=4)
        l2, l3 = feed(pf, list(range(0, 50)))
        assert len(l2) == len(set(l2))
        assert len(l3) == len(set(l3))

    def test_window_split_breakdown_is_consistent(self):
        # Steady state issues exactly one L2-window line (at distance
        # `degree`) and one L3-window line (at `degree + l3_extra`) per
        # miss; nothing inside the L2 window is ever emitted as an L3
        # line.  Pin the n_pf_l2/n_pf_l3 breakdown exactly.
        degree, extra, threshold = 4, 8, 2
        pf = StreamPrefetcher(train_threshold=threshold, degree=degree,
                              l3_extra=extra)
        n = 40
        all_l2, all_l3 = [], []
        for line in range(n):
            l2, l3 = pf.observe(line)
            for t in l2:
                assert line < t <= line + degree, (line, t)
            for t in l3:
                assert t > line + degree, (line, t)
            all_l2.extend(l2)
            all_l3.extend(l3)
        # Training burst at line `threshold - 1` emits the full windows;
        # every later miss advances each window by exactly one line.
        steady = n - threshold
        assert len(all_l2) == degree + steady
        assert len(all_l3) == extra + steady
        assert pf.n_pf_l2_issued == len(all_l2)
        assert pf.n_pf_l3_issued == len(all_l3)
        # Every line past the training point is eventually promoted
        # toward L2 (the paper's countable "prefetch into L2" kind).
        assert set(all_l2) == set(range(threshold, threshold + len(all_l2)))

    def test_l3_window_beyond_l2(self):
        pf = StreamPrefetcher(train_threshold=2, degree=2, l3_extra=2)
        pf.observe(10)
        pf.observe(11)
        l2, l3 = pf.observe(12)
        assert max(l2, default=0) < min(l3, default=1 << 60)

    def test_repeated_line_is_neutral(self):
        pf = StreamPrefetcher(train_threshold=2)
        feed(pf, [10, 11, 12])
        l2, l3 = pf.observe(12)  # repeated miss on same line
        assert not l2 and not l3


class TestMultipleStreams:
    def test_interleaved_streams_both_train(self):
        pf = StreamPrefetcher(n_streams=4, train_threshold=2)
        sequence = []
        for i in range(6):
            sequence.append(100 + i)
            sequence.append(5000 + i)
        l2, l3 = feed(pf, sequence)
        targets = set(l2 + l3)
        assert any(t > 5000 for t in targets)
        assert any(100 < t < 5000 for t in targets)

    def test_stream_capacity_eviction(self):
        pf = StreamPrefetcher(n_streams=1, train_threshold=2)
        feed(pf, [10, 11, 12])          # trained
        feed(pf, [9000])                # evicts the only tracker
        l2, l3 = pf.observe(13)         # old stream forgotten
        assert not l2 and not l3

    def test_irregular_misses_prefer_idle_slots(self):
        # Regression: an interleaved irregular miss stream used to claim
        # the round-robin victim slot on every non-matching miss, tearing
        # down trained sequential streams while idle slots existed.
        pf = StreamPrefetcher(n_streams=4, train_threshold=2)
        feed(pf, [100, 101, 102])       # slot 0: trained
        # Far more irregular misses than there are slots.
        feed(pf, [9000 + 64 * i for i in range(20)])
        l2, l3 = pf.observe(103)        # the trained stream survived
        assert l2 or l3

    def test_untrained_slots_evicted_before_trained(self):
        pf = StreamPrefetcher(n_streams=2, train_threshold=2)
        feed(pf, [100, 101, 102])       # slot 0: trained
        feed(pf, [9000])                # slot 1: idle -> claimed
        feed(pf, [7000])                # no idle left: reuse untrained slot 1
        l2, l3 = pf.observe(103)
        assert l2 or l3                 # trained stream still alive
        # With every slot trained, the round-robin victim finally evicts.
        pf2 = StreamPrefetcher(n_streams=1, train_threshold=2)
        feed(pf2, [10, 11, 12])
        feed(pf2, [9000])
        assert not any(pf2.observe(13))


class TestControls:
    def test_disabled(self):
        pf = StreamPrefetcher(enabled=False)
        l2, l3 = feed(pf, list(range(20)))
        assert not l2 and not l3

    def test_zero_streams(self):
        pf = StreamPrefetcher(n_streams=0)
        l2, l3 = feed(pf, list(range(20)))
        assert not l2 and not l3

    def test_reset_forgets_training(self):
        pf = StreamPrefetcher(train_threshold=2)
        feed(pf, [10, 11, 12])
        pf.reset()
        l2, l3 = pf.observe(13)
        assert not l2 and not l3
