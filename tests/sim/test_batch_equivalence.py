"""Property-style equivalence: ``batched`` must match ``reference`` exactly.

The batched executor's contract (repro.sim.batch) is bit-identical
PMU counters, RAPL joules, wall-clock, and cache/LRU state.  These
tests run randomly generated workload mixes — sequential scans
(including exact rescans, which exercise the scan-replay memo),
cache-thrashing scans, multi-word accesses, strided runs, pointer
chases, stores, TCM accesses and boundary straddles, prefetcher
on/off, and EIST on — through both executors and require exact
equality, floats included.
"""

from __future__ import annotations

import random

import pytest

from repro.config import tiny_arm, tiny_intel
from repro.sim.address_space import Region
from repro.sim.machine import Machine

PRESETS = {"intel": tiny_intel, "arm": tiny_arm}


def _random_program(rng: random.Random, tcm_base, tcm_size) -> list:
    """A list of (op, *args) tuples over two regions: a small buffer
    that fits in L1 and a large one that thrashes every level."""
    ops = []
    last_scan = None
    for _ in range(rng.randrange(150, 250)):
        kind = rng.randrange(14)
        if kind == 0 and last_scan is not None and rng.random() < 0.8:
            ops.append(last_scan)  # exact rescan: the memo path
        elif kind <= 2:
            region = rng.choice(("small", "big"))
            start = rng.randrange(8)
            n = rng.randrange(1, 12 if region == "small" else 600)
            last_scan = ("scan", region, start, n, rng.choice((1, 1, 3)))
            ops.append(last_scan)
        elif kind == 3:
            ops.append(("load", rng.choice(("small", "big")),
                        rng.randrange(4096), rng.random() < 0.5))
        elif kind == 4:
            ops.append(("store", rng.choice(("small", "big")),
                        rng.randrange(4096)))
        elif kind == 5:
            ops.append(("load_bytes", rng.choice(("small", "big")),
                        rng.randrange(512), rng.randrange(1, 300),
                        rng.random() < 0.5))
        elif kind == 6:
            ops.append(("store_bytes", rng.choice(("small", "big")),
                        rng.randrange(512), rng.randrange(1, 200)))
        elif kind == 7:
            offs = sorted(rng.sample(range(0, 4096, 8),
                                     rng.randrange(1, 10)))
            ops.append(("load_run", rng.choice(("small", "big")),
                        tuple(offs), rng.random() < 0.5))
        elif kind == 8:
            addrs = [rng.randrange(0, 1 << 16) & ~7 for _ in
                     range(rng.randrange(1, 12))]
            ops.append(("load_list", "big", tuple(addrs),
                        rng.random() < 0.5))
        elif kind == 9:
            if rng.random() < 0.5:
                ops.append(("store_repeat", rng.choice(("small", "big")),
                            rng.randrange(256) & ~7, rng.randrange(1, 40)))
            else:
                region = rng.choice(("small", "big"))
                n_lines = 16 if region == "small" else rng.randrange(8, 512)
                ops.append(("load_ring", region, rng.randrange(n_lines),
                            rng.randrange(0, 2 * n_lines),
                            rng.randrange(1, 200), n_lines,
                            rng.random() < 0.5))
        elif kind == 10:
            ops.append(("hot", rng.randrange(256), rng.randrange(1, 50)))
        elif kind == 11:
            ops.append(("pf", rng.random() < 0.5))
        elif kind == 12:
            ops.append(("settle",))
        elif kind == 13 and tcm_base is not None:
            # TCM interior plus boundary-straddling runs.
            if rng.random() < 0.5:
                ops.append(("tcm_run",
                            rng.randrange(0, max(8, tcm_size - 64), 8),
                            rng.randrange(1, 8), rng.random() < 0.5))
            else:
                ops.append(("straddle", rng.randrange(1, 6),
                            rng.random() < 0.5))
    return ops


def _execute(preset: str, mode: str, program: list, eist: bool):
    machine = Machine(PRESETS[preset](), exec_mode=mode)
    small = machine.address_space.alloc_lines(16, "small")
    big = machine.address_space.alloc_lines(4096, "big")
    base = {"small": small.base, "big": big.base}
    tcm = machine.hierarchy.tcm_region
    if eist:
        machine.enable_eist()
    ex = machine.exec
    for op in program:
        kind = op[0]
        if kind == "scan":
            _, region, start, n, lpl = op
            machine.scan_lines(base[region] + start * 64, n, lpl)
        elif kind == "load":
            machine.load(base[op[1]] + op[2], op[3])
        elif kind == "store":
            machine.store(base[op[1]] + op[2])
        elif kind == "load_bytes":
            machine.load_bytes(base[op[1]] + op[2], op[3], op[4])
        elif kind == "store_bytes":
            machine.store_bytes(base[op[1]] + op[2], op[3])
        elif kind == "load_run":
            ex.load_run(base[op[1]], op[2], op[3])
        elif kind == "load_list":
            ex.load_list([base[op[1]] + a for a in op[2]], op[3])
        elif kind == "store_repeat":
            ex.store_repeat(base[op[1]] + op[2], op[3])
        elif kind == "load_ring":
            _, region, cursor, stride, count, n_lines, dep = op
            ex.load_ring(base[region], cursor, stride, count, n_lines, dep)
        elif kind == "hot":
            machine.hot_loads(small.base + op[1], op[2])
            machine.hot_stores(small.base + op[1], op[2])
        elif kind == "pf":
            machine.set_prefetcher(op[1])
        elif kind == "settle":
            machine.settle()
            machine.governor_tick()
        elif kind == "tcm_run":
            ex.load_run(tcm.base + op[1], tuple(range(0, op[2] * 8, 8)),
                        op[3])
        elif kind == "straddle":
            # A run crossing the TCM lower boundary: per-op fallback.
            n_words = op[1]
            ex.load_run(tcm.base - 8 * 2,
                        tuple(range(0, (n_words + 2) * 8, 8)), op[2])
    machine.settle()
    return machine


def _state(machine: Machine) -> dict:
    rapl = machine.rapl
    state = {
        "counters": machine.cpu.counters.as_dict(),
        "core_j": rapl.energy_core(),
        "package_j": rapl.energy_package(),
        "dram_j": rapl.energy_dram(),
        "time_s": machine.time_s,
        "busy_s": machine.busy_s,
        "pstate": machine.pstate,
    }
    for level in (machine.hierarchy.l1d, machine.hierarchy.l2,
                  machine.hierarchy.l3):
        if level is None:
            continue
        state[level.name] = (
            level.hits, level.misses, level.fills, level.evictions,
            level.dirty_evictions, level.occupancy,
            tuple(tuple(s.items()) for s in level._sets),
        )
    pf = machine.hierarchy.prefetcher
    state["prefetcher"] = (
        pf.n_trained, pf.n_pf_l2_issued, pf.n_pf_l3_issued, pf._victim,
        tuple((s.last_line, s.run_length, s.l2_up_to, s.prefetched_up_to)
              for s in pf._streams),
    )
    return state


@pytest.mark.parametrize("preset", ("intel", "arm"))
@pytest.mark.parametrize("seed", range(5))
def test_random_mix_equivalence(preset, seed):
    machine = Machine(PRESETS[preset]())
    tcm = machine.hierarchy.tcm_region
    rng = random.Random((hash(preset) ^ seed) & 0xFFFFFFFF)
    program = _random_program(
        rng,
        tcm.base if tcm is not None else None,
        tcm.size if tcm is not None else 0,
    )
    ref = _state(_execute(preset, "reference", program, eist=False))
    bat = _state(_execute(preset, "batched", program, eist=False))
    assert ref == bat


@pytest.mark.parametrize("preset", ("intel", "arm"))
def test_random_mix_equivalence_with_eist(preset):
    machine = Machine(PRESETS[preset]())
    tcm = machine.hierarchy.tcm_region
    rng = random.Random(99)
    program = _random_program(
        rng,
        tcm.base if tcm is not None else None,
        tcm.size if tcm is not None else 0,
    )
    ref = _state(_execute(preset, "reference", program, eist=True))
    bat = _state(_execute(preset, "batched", program, eist=True))
    assert ref == bat


def test_scan_memo_invalidated_by_per_op_access():
    """A direct machine.load between identical scans must not let the
    replay memo serve stale hits."""
    program = [("scan", "small", 0, 8, 1)] * 3 + [
        ("store", "small", 64),
        ("scan", "small", 0, 8, 1),
        ("load", "small", 256, True),
        ("scan", "small", 0, 8, 1),
    ]
    ref = _state(_execute("intel", "reference", program, eist=False))
    bat = _state(_execute("intel", "batched", program, eist=False))
    assert ref == bat


def _run_scenario(mode: str, body) -> Machine:
    machine = Machine(tiny_intel(), exec_mode=mode)
    body(machine)
    machine.settle()
    return machine


def _assert_modes_agree(body):
    ref = _state(_run_scenario("reference", body))
    bat = _state(_run_scenario("batched", body))
    assert ref == bat


def test_cold_stream_scan_equivalence():
    """A scan twice the size of L3, run twice: the cold-stream fast
    path (checked warmup, unchecked middle segment, junk-laden tail on
    the second pass) must match the reference bit for bit — counters,
    energy, LRU order, and prefetcher stream state."""
    def body(machine):
        n_lines = machine.hierarchy.l3.size * 2 // 64
        buf = machine.address_space.alloc_lines(n_lines, "cold")
        for _ in range(2):
            machine.scan_lines(buf.base, n_lines)
    _assert_modes_agree(body)


def test_cold_scan_overlapping_tcm_region():
    """A TCM window inside the scanned range disqualifies the stride
    fast path; the generic walk must produce identical state."""
    def body(machine):
        n_lines = machine.hierarchy.l3.size // 64
        buf = machine.address_space.alloc_lines(n_lines, "cold")
        machine.hierarchy.tcm_region = Region(
            base=buf.base + (n_lines // 2) * 64, size=16 * 64, label="tcm")
        machine.scan_lines(buf.base, n_lines)
        machine.scan_lines(buf.base, n_lines)
    _assert_modes_agree(body)


def test_cold_scan_through_dirty_cache_state():
    """Store-dirtied lines ahead of a cold scan force dirty-victim
    writeback cascades inside the stride (and block the unchecked
    segment's clean-victim proof); every cascade must match."""
    def body(machine):
        n_lines = machine.hierarchy.l3.size * 2 // 64
        buf = machine.address_space.alloc_lines(n_lines, "cold")
        # Dirty a swath of lines across all three levels...
        for i in range(0, n_lines, 3):
            machine.store(buf.base + i * 64)
        # ...then cold-scan the whole range over them, twice.
        machine.scan_lines(buf.base, n_lines)
        machine.scan_lines(buf.base, n_lines)
    _assert_modes_agree(body)


def test_interleaved_streams_clip_the_stride():
    """Two sequential scans advancing in alternating chunks keep two
    trackers live; stride clipping at foreign-tracker positions must
    not drift from the reference."""
    def body(machine):
        n_lines = machine.hierarchy.l3.size // 64
        a = machine.address_space.alloc_lines(n_lines, "a")
        b = machine.address_space.alloc_lines(n_lines, "b")
        chunk = 64
        for i in range(0, n_lines, chunk):
            machine.scan_lines(a.base + i * 64, chunk)
            machine.scan_lines(b.base + i * 64, chunk)
    _assert_modes_agree(body)


def test_flush_mid_run_invalidates_fast_path_state():
    """satellite: a mid-run MemoryHierarchy.flush() bumps mut_epoch;
    both the scan-replay memo and the stride fast path must start cold
    again instead of replaying stale state."""
    def body(machine):
        l1_lines = machine.hierarchy.l1d.size // 64
        small = machine.address_space.alloc_lines(l1_lines, "small")
        big = machine.address_space.alloc_lines(
            machine.hierarchy.l3.size * 2 // 64, "big")
        n_big = machine.hierarchy.l3.size * 2 // 64
        machine.scan_lines(small.base, l1_lines)
        machine.scan_lines(small.base, l1_lines)   # memoised replay
        machine.scan_lines(big.base, n_big)        # trained fast path
        machine.hierarchy.flush()                  # cold start mid-run
        misses_before = machine.hierarchy.l1d.misses
        machine.scan_lines(small.base, l1_lines)   # must miss again
        assert machine.hierarchy.l1d.misses - misses_before == l1_lines
        machine.scan_lines(big.base, n_big)
    _assert_modes_agree(body)


def test_load_ring_fold_after_warm_rotation():
    """An L1-resident ring walked for many rotations: the batched
    executor folds everything after the first all-hit rotation into
    bulk accounting, which must stay bit-identical — including the
    returned cursor used to chain further walks."""
    def body(machine):
        ring = machine.address_space.alloc_lines(24, "ring")
        cursor = 0
        for count in (24, 240, 7, 2401):
            cursor = machine.exec.load_ring(ring.base, cursor, 7, count, 24)
    _assert_modes_agree(body)


def test_load_ring_miss_recovery_and_gcd_strides():
    """Rings bigger than L1 (every rotation misses), strides sharing a
    factor with the ring (short sub-cycles), stride 0, and stride
    multiples of the ring size must all match per-op execution."""
    def body(machine):
        big = machine.address_space.alloc_lines(512, "big-ring")
        ex = machine.exec
        cursor = 0
        for stride in (97, 8, 64, 512, 0, 1):
            cursor = ex.load_ring(big.base, cursor, stride, 300, 512)
    _assert_modes_agree(body)


def test_load_ring_interrupted_by_evictions():
    """Evicting the ring's lines between (and is followed by) walks
    forces the batched path off the fold and through the generic walk
    mid-rotation."""
    def body(machine):
        ring = machine.address_space.alloc_lines(24, "ring")
        thrash = machine.address_space.alloc_lines(
            machine.hierarchy.l3.size // 64, "thrash")
        cursor = 0
        cursor = machine.exec.load_ring(ring.base, cursor, 7, 120, 24)
        machine.scan_lines(thrash.base, thrash.n_lines)  # evict the ring
        cursor = machine.exec.load_ring(ring.base, cursor, 7, 120, 24)
        for i in range(0, 24, 5):
            machine.store(ring.base + i * 64)  # dirty a few ring lines
        machine.exec.load_ring(ring.base, cursor, 7, 120, 24)
    _assert_modes_agree(body)


def test_load_ring_dependent_and_tcm_overlap():
    """Dependent pricing applies to every ring load; a ring overlapping
    the TCM window must take the exact per-address fallback."""
    def body(machine):
        ring = machine.address_space.alloc_lines(32, "ring")
        machine.exec.load_ring(ring.base, 0, 7, 100, 32, dependent=True)
        tcm = machine.hierarchy.tcm_region
        if tcm is None:
            machine.hierarchy.tcm_region = Region(
                base=ring.base + 8 * 64, size=4 * 64, label="tcm")
        else:
            machine.hierarchy.tcm_region = Region(
                base=ring.base + 8 * 64, size=4 * 64, label=tcm.label)
        machine.exec.load_ring(ring.base, 0, 7, 100, 32)
        machine.exec.load_ring(ring.base, 3, 5, 64, 32, dependent=True)
    _assert_modes_agree(body)


def test_load_ring_cursor_matches_reference():
    """Both executors must report the same final cursor for the same
    walk (the fold must not desynchronise the cursor)."""
    for stride, count, n_lines in ((7, 2401, 24), (97, 300, 512),
                                   (6, 100, 24), (0, 10, 16)):
        cursors = {}
        for mode in ("reference", "batched"):
            machine = Machine(tiny_intel(), exec_mode=mode)
            ring = machine.address_space.alloc_lines(n_lines, "ring")
            cursors[mode] = machine.exec.load_ring(
                ring.base, 1, stride, count, n_lines)
        assert cursors["reference"] == cursors["batched"]


def test_exec_mode_knob():
    machine = Machine(tiny_intel(), exec_mode="reference")
    assert machine.exec_mode == "reference"
    machine.set_exec_mode("batched")
    assert machine.exec.mode == "batched"
    with pytest.raises(Exception):
        machine.set_exec_mode("warp")
