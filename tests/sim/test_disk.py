"""Unit tests for the disk model."""

import pytest

from repro.errors import TransientDiskError
from repro.faults import FaultInjector, FaultPlan
from repro.sim.disk import DiskModel


class TestDiskModel:
    def test_random_slower_than_sequential(self):
        disk = DiskModel()
        disk.read_time(100, 4096)
        sequential = disk.read_time(101, 4096)
        random = disk.read_time(999, 4096)
        assert random > sequential

    def test_throughput_term(self):
        disk = DiskModel()
        small = disk.read_time(0, 4096)
        large = disk.read_time(1, 4 << 20)
        assert large > small

    def test_stats(self):
        disk = DiskModel()
        disk.read_time(0, 1000)
        disk.write_time(1, 2000)
        assert disk.reads == 1 and disk.writes == 1
        assert disk.bytes_read == 1000 and disk.bytes_written == 2000

    def test_reset_stats(self):
        disk = DiskModel()
        disk.read_time(0, 1000)
        disk.reset_stats()
        assert disk.reads == 0 and disk.bytes_read == 0

    def test_write_sequential_bonus(self):
        disk = DiskModel()
        disk.write_time(50, 4096)
        seq = disk.write_time(51, 4096)
        rand = disk.write_time(5, 4096)
        assert rand > seq


class TestDiskFaults:
    def test_no_injector_means_no_faults(self):
        disk = DiskModel()
        for block in range(100):
            disk.read_time(block * 7, 4096)
        assert disk.fault_errors == 0 and disk.fault_slowdowns == 0

    def test_slowdown_multiplies_latency(self):
        plain = DiskModel()
        baseline = plain.read_time(999, 4096)
        disk = DiskModel()
        disk.injector = FaultInjector(
            FaultPlan(disk_slow_p=1.0, disk_slow_factor=10.0), seed=1)
        slowed = disk.read_time(999, 4096)
        assert disk.fault_slowdowns == 1
        # Only the access-latency term scales, not the throughput term.
        expected = (baseline - 4096 / disk.throughput_bytes_per_s) * 10.0 \
            + 4096 / disk.throughput_bytes_per_s
        assert slowed == pytest.approx(expected)

    def test_transient_error_carries_elapsed_time(self):
        disk = DiskModel()
        disk.injector = FaultInjector(FaultPlan(disk_error_p=1.0), seed=1)
        with pytest.raises(TransientDiskError) as exc:
            disk.read_time(42, 4096)
        assert exc.value.block == 42
        assert exc.value.elapsed_s > 0
        # The platter spun either way: the attempt is in the stats.
        assert disk.reads == 1 and disk.fault_errors == 1

    def test_reset_stats_clears_fault_counters(self):
        disk = DiskModel()
        disk.injector = FaultInjector(
            FaultPlan(disk_error_p=1.0, disk_slow_p=1.0), seed=1)
        with pytest.raises(TransientDiskError):
            disk.read_time(0, 4096)
        disk.reset_stats()
        assert disk.fault_errors == 0 and disk.fault_slowdowns == 0
