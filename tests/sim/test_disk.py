"""Unit tests for the disk model."""

from repro.sim.disk import DiskModel


class TestDiskModel:
    def test_random_slower_than_sequential(self):
        disk = DiskModel()
        disk.read_time(100, 4096)
        sequential = disk.read_time(101, 4096)
        random = disk.read_time(999, 4096)
        assert random > sequential

    def test_throughput_term(self):
        disk = DiskModel()
        small = disk.read_time(0, 4096)
        large = disk.read_time(1, 4 << 20)
        assert large > small

    def test_stats(self):
        disk = DiskModel()
        disk.read_time(0, 1000)
        disk.write_time(1, 2000)
        assert disk.reads == 1 and disk.writes == 1
        assert disk.bytes_read == 1000 and disk.bytes_written == 2000

    def test_reset_stats(self):
        disk = DiskModel()
        disk.read_time(0, 1000)
        disk.reset_stats()
        assert disk.reads == 0 and disk.bytes_read == 0

    def test_write_sequential_bonus(self):
        disk = DiskModel()
        disk.write_time(50, 4096)
        seq = disk.write_time(51, 4096)
        rand = disk.write_time(5, 4096)
        assert rand > seq
