"""Unit tests for P-states, the voltage law, residency, and EIST."""

import pytest

from repro.errors import ConfigError
from repro.sim.dvfs import (
    EistGovernor,
    PstateTable,
    ResidencyRecorder,
    VoltageLaw,
)


class TestVoltageLaw:
    def test_paper_operating_points(self):
        law = VoltageLaw(0.6, 1.0 / 6.0)
        assert law.voltage(3.6) == pytest.approx(1.2)
        assert law.voltage(2.4) == pytest.approx(1.0)
        assert law.voltage(1.2) == pytest.approx(0.8)


class TestPstateTable:
    def test_frequency_mapping(self):
        table = PstateTable(lowest=8, highest=36)
        assert table.freq_ghz(36) == pytest.approx(3.6)
        assert table.freq_ghz(8) == pytest.approx(0.8)

    def test_validate_rejects_out_of_range(self):
        table = PstateTable(lowest=8, highest=36)
        with pytest.raises(ConfigError):
            table.freq_ghz(37)
        with pytest.raises(ConfigError):
            table.freq_ghz(7)

    def test_clamp(self):
        table = PstateTable(lowest=8, highest=36)
        assert table.clamp(100) == 36
        assert table.clamp(2) == 8
        assert table.clamp(20) == 20

    def test_vf2_reference_is_one(self):
        table = PstateTable(lowest=8, highest=36)
        assert table.vf2(36) == pytest.approx(1.0)

    def test_vf2_paper_ratios(self):
        """(V24/V36)^2 ~ 0.69, (V12/V36)^2 ~ 0.44 — the Table 2 scaling."""
        table = PstateTable(lowest=8, highest=36)
        assert table.vf2(24) == pytest.approx(0.694, abs=0.01)
        assert table.vf2(12) == pytest.approx(0.444, abs=0.01)

    def test_states_range(self):
        table = PstateTable(lowest=8, highest=36)
        states = list(table.states())
        assert states[0] == 8 and states[-1] == 36 and len(states) == 29

    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigError):
            PstateTable(lowest=10, highest=5)


class TestResidency:
    def test_fractions(self):
        rec = ResidencyRecorder()
        rec.record(36, 3.0)
        rec.record(24, 1.0)
        assert rec.fraction_at(36) == pytest.approx(0.75)
        assert rec.fraction_at(24) == pytest.approx(0.25)
        assert rec.fraction_at(12) == 0.0

    def test_accumulates(self):
        rec = ResidencyRecorder()
        rec.record(36, 1.0)
        rec.record(36, 1.0)
        assert rec.seconds[36] == pytest.approx(2.0)

    def test_empty(self):
        assert ResidencyRecorder().fraction_at(36) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            ResidencyRecorder().record(36, -1.0)

    def test_reset(self):
        rec = ResidencyRecorder()
        rec.record(36, 1.0)
        rec.reset()
        assert rec.total == 0.0


class TestGovernor:
    def gov(self, **kwargs):
        return EistGovernor(table=PstateTable(lowest=8, highest=36),
                            up_threshold=0.8, down_threshold=0.4,
                            down_step=4, **kwargs)

    def test_high_load_jumps_to_top(self):
        assert self.gov().next_pstate(8, 0.95) == 36

    def test_low_load_steps_down(self):
        assert self.gov().next_pstate(36, 0.1) == 32

    def test_low_load_clamped_at_bottom(self):
        assert self.gov().next_pstate(8, 0.0) == 8

    def test_mid_load_holds(self):
        assert self.gov().next_pstate(20, 0.6) == 20


class TestStuckGovernor:
    def gov(self, plan):
        from repro.faults import FaultInjector

        return EistGovernor(table=PstateTable(lowest=8, highest=36),
                            up_threshold=0.8, down_threshold=0.4,
                            down_step=4,
                            injector=FaultInjector(plan, seed=3))

    def test_stuck_episode_freezes_pstate(self):
        from repro.faults import FaultPlan

        gov = self.gov(FaultPlan(dvfs_stuck_p=1.0, dvfs_stuck_epochs=3))
        # High load would normally jump to 36; the stuck episode holds 8
        # for exactly dvfs_stuck_epochs epochs.
        assert gov.next_pstate(8, 0.95) == 8
        assert gov.next_pstate(8, 0.95) == 8
        assert gov.next_pstate(8, 0.95) == 8

    def test_zero_probability_behaves_normally(self):
        from repro.faults import FaultPlan

        gov = self.gov(FaultPlan())
        assert gov.next_pstate(8, 0.95) == 36
        assert gov.next_pstate(36, 0.1) == 32


class TestMachineIntegration:
    def test_pstate_changes_frequency(self, machine):
        machine.set_pstate(12)
        assert machine.frequency_ghz() == pytest.approx(1.2)

    def test_busy_time_scales_with_frequency(self, machine):
        machine.set_pstate(36)
        machine.add(36000)
        machine.settle()
        t36 = machine.busy_s
        machine.reset_measurements()
        machine.set_pstate(12)
        machine.add(36000)
        machine.settle()
        assert machine.busy_s == pytest.approx(3 * t36)

    def test_eist_ramps_up_under_load(self, machine):
        machine.set_pstate(8)
        machine.enable_eist(EistGovernor(table=machine.config.pstates,
                                         epoch_seconds=1e-6))
        region = machine.address_space.alloc_lines(8, "w")
        for _ in range(20_000):
            machine.load(region.base)
            machine.governor_tick()
            if machine.pstate == 36:
                break
        assert machine.pstate == 36

    def test_eist_ramps_down_when_idle(self, machine):
        machine.enable_eist()
        assert machine.pstate == 36
        for _ in range(20):
            machine.idle(0.02)
        assert machine.pstate < 36

    def test_residency_recorded(self, machine):
        machine.add(1000)
        machine.settle()
        assert machine.residency.fraction_at(machine.pstate) == pytest.approx(1.0)
