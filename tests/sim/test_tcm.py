"""Unit tests for the TCM allocator."""

import pytest

from repro.errors import AllocationError
from repro.sim.tcm import TCM_BASE, TcmAllocator, TcmConfig


def allocator(size=4096) -> TcmAllocator:
    return TcmAllocator(TcmConfig(size=size).region())


class TestTcmConfig:
    def test_region_at_fixed_base(self):
        region = TcmConfig(size=1024).region()
        assert region.base == TCM_BASE
        assert region.size == 1024


class TestAllocator:
    def test_alloc_within_region(self):
        tcm = allocator()
        region = tcm.alloc(128)
        assert TCM_BASE <= region.base
        assert region.base + region.size <= TCM_BASE + 4096

    def test_alloc_disjoint(self):
        tcm = allocator()
        a = tcm.alloc(100)
        b = tcm.alloc(100)
        assert a.base != b.base

    def test_exhaustion(self):
        tcm = allocator(size=1024)
        tcm.alloc(1024)
        with pytest.raises(AllocationError):
            tcm.alloc(64)

    def test_free_and_reuse(self):
        tcm = allocator(size=1024)
        a = tcm.alloc(1024)
        tcm.free(a)
        b = tcm.alloc(1024)
        assert b.base == a.base

    def test_double_free_rejected(self):
        tcm = allocator()
        a = tcm.alloc(64)
        tcm.free(a)
        with pytest.raises(AllocationError):
            tcm.free(a)

    def test_coalescing(self):
        tcm = allocator(size=4096)
        chunks = [tcm.alloc(1024) for _ in range(4)]
        for chunk in chunks:
            tcm.free(chunk)
        # After freeing everything, one full-size allocation must fit.
        assert tcm.alloc(4096).size == 4096

    def test_bytes_accounting(self):
        tcm = allocator(size=4096)
        tcm.alloc(1000)
        assert tcm.bytes_live == 1024  # line-aligned
        assert tcm.bytes_free == 4096 - 1024

    def test_free_all(self):
        tcm = allocator(size=2048)
        tcm.alloc(512)
        tcm.alloc(512)
        tcm.free_all()
        assert tcm.bytes_free == 2048

    def test_zero_alloc_rejected(self):
        with pytest.raises(AllocationError):
            allocator().alloc(0)
