"""Unit tests for the hidden energy model and RAPL counters."""

import pytest

from repro.sim.energy import (
    BackgroundPower,
    EventCost,
    EventEnergyTable,
    RaplCounters,
    active_energy_joules,
)
from repro.sim.pmu import PmuCounters


def flat_table(value_nj: float = 1.0) -> EventEnergyTable:
    cost = EventCost(0.0, value_nj)
    return EventEnergyTable(
        load_l1d=cost, store_l1d=cost, xfer_l2=cost, stall_cycle=cost,
        add=cost, nop=cost, mul=cost, cmp=cost, branch=cost, other=cost,
        tcm_load=cost, tcm_store=cost, xfer_l3=cost, pf_l2=cost,
        mem_ctl=cost, writeback=cost, dram_access=cost, pf_l3_dram=cost,
    )


class TestEventCost:
    def test_reference_point(self):
        assert EventCost(2.0, 3.0).at(1.0) == pytest.approx(5.0)

    def test_scaling(self):
        cost = EventCost(2.0, 3.0)
        assert cost.at(0.5) == pytest.approx(3.5)

    def test_fixed_part_immune_to_scaling(self):
        cost = EventCost(10.0, 0.0)
        assert cost.at(0.1) == cost.at(1.0)


class TestActivePricing:
    def test_domains_are_separate(self):
        counters = PmuCounters(n_l1d=1, n_l3=1, n_mem=1)
        account = active_energy_joules(counters, flat_table(), 1.0)
        assert account.core_active > 0
        assert account.uncore_active > 0
        assert account.dram_active > 0

    def test_zero_counters_zero_energy(self):
        account = active_energy_joules(PmuCounters(), flat_table(), 1.0)
        assert account.core_active == 0
        assert account.uncore_active == 0
        assert account.dram_active == 0

    def test_linearity_in_counts(self):
        a = active_energy_joules(PmuCounters(n_l1d=10), flat_table(), 1.0)
        b = active_energy_joules(PmuCounters(n_l1d=30), flat_table(), 1.0)
        assert b.core_active == pytest.approx(3 * a.core_active)

    def test_nanojoule_unit(self):
        account = active_energy_joules(
            PmuCounters(n_add=1), flat_table(2.0), 1.0
        )
        assert account.core_active == pytest.approx(2e-9)

    def test_stall_cycles_priced(self):
        account = active_energy_joules(
            PmuCounters(stall_cycles=100.0), flat_table(1.0), 1.0
        )
        assert account.core_active == pytest.approx(100e-9)

    def test_prefetch_priced_in_uncore_and_dram(self):
        account = active_energy_joules(
            PmuCounters(n_pf_l3=5), flat_table(1.0), 1.0
        )
        assert account.uncore_active > 0   # memory-controller part
        assert account.dram_active > 0     # DRAM part


class TestRapl:
    def test_monotone_counters(self):
        rapl = RaplCounters(flat_table(), BackgroundPower())
        readings = [rapl.energy_package()]
        for _ in range(5):
            rapl.settle_active(PmuCounters(n_l1d=100), 1.0)
            rapl.settle_background(0.01)
            readings.append(rapl.energy_package())
        assert readings == sorted(readings)

    def test_core_within_package(self):
        rapl = RaplCounters(flat_table(), BackgroundPower())
        rapl.settle_active(PmuCounters(n_l1d=10, n_l3=10, n_mem=10), 1.0)
        rapl.settle_background(0.5)
        assert rapl.energy_core() <= rapl.energy_package()

    def test_background_rates(self):
        bg = BackgroundPower(core=2.0, package_total=5.0, dram=1.0)
        rapl = RaplCounters(flat_table(), bg)
        rapl.settle_background(2.0)
        assert rapl.energy_core() == pytest.approx(4.0)
        assert rapl.energy_package() == pytest.approx(10.0)
        assert rapl.energy_dram() == pytest.approx(2.0)

    def test_deep_idle_reduces_background(self):
        bg = BackgroundPower(core=2.0, package_total=5.0, dram=1.0,
                             idle_fraction=0.25)
        rapl = RaplCounters(flat_table(), bg)
        rapl.settle_background(1.0, deep_idle=True)
        assert rapl.energy_core() == pytest.approx(0.5)

    def test_reset(self):
        rapl = RaplCounters(flat_table(), BackgroundPower())
        rapl.settle_active(PmuCounters(n_l1d=10), 1.0)
        rapl.reset()
        assert rapl.energy_package() == 0.0

    def test_vf2_scales_variable_part(self):
        rapl_hi = RaplCounters(flat_table(), BackgroundPower())
        rapl_lo = RaplCounters(flat_table(), BackgroundPower())
        counters = PmuCounters(n_add=1000)
        rapl_hi.settle_active(counters, 1.0)
        rapl_lo.settle_active(counters, 0.5)
        assert rapl_lo.energy_core() == pytest.approx(
            0.5 * rapl_hi.energy_core()
        )

    def test_default_table_matches_paper_magnitudes(self):
        """The hidden ground truth sits near Table 2's values."""
        table = EventEnergyTable()
        assert table.load_l1d.at(1.0) == pytest.approx(1.30, abs=0.2)
        assert table.store_l1d.at(1.0) == pytest.approx(2.42, abs=0.3)
        mem_total = table.mem_ctl.at(1.0) + table.dram_access.at(1.0)
        assert mem_total == pytest.approx(103.1, rel=0.1)
