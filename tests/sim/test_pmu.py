"""Unit tests for PMU counters and derived metrics."""

import pytest

from repro.sim.pmu import Pmu, PmuCounters


class TestDerivedMetrics:
    def test_instructions_sum(self):
        c = PmuCounters(n_load_inst=2, n_store_inst=3, n_add=4, n_nop=1,
                        n_mul=1, n_cmp=1, n_branch=1, n_other=2)
        assert c.instructions == 15

    def test_ipc(self):
        c = PmuCounters(n_add=100, cycles=50.0)
        assert c.ipc == pytest.approx(2.0)

    def test_ipc_zero_cycles(self):
        assert PmuCounters(n_add=5).ipc == 0.0

    def test_miss_rates(self):
        c = PmuCounters(n_l1d=100, l1d_hits=90, n_l2=10, l2_hits=5,
                        n_l3=5, l3_hits=5)
        assert c.l1d_miss_rate == pytest.approx(0.10)
        assert c.l2_miss_rate == pytest.approx(0.50)
        assert c.l3_miss_rate == pytest.approx(0.0)

    def test_miss_rate_no_accesses(self):
        assert PmuCounters().l1d_miss_rate == 0.0

    def test_store_hit_rate(self):
        c = PmuCounters(n_store=100, n_store_l1d_hit=99)
        assert c.store_l1d_hit_rate == pytest.approx(0.99)

    def test_bli(self):
        c = PmuCounters(n_load_inst=98, n_branch=1, n_cmp=1)
        assert c.body_loop_instruction_pct("load") == pytest.approx(98.0)

    def test_bli_multiple_classes(self):
        c = PmuCounters(n_add=50, n_nop=30, n_other=20)
        assert c.body_loop_instruction_pct("add", "nop") == pytest.approx(80.0)


class TestSnapshots:
    def test_minus(self):
        a = PmuCounters(n_l1d=10, cycles=100.0)
        b = PmuCounters(n_l1d=3, cycles=40.0)
        delta = a.minus(b)
        assert delta.n_l1d == 7
        assert delta.cycles == pytest.approx(60.0)

    def test_copy_is_independent(self):
        a = PmuCounters(n_l1d=5)
        b = a.copy()
        b.n_l1d = 99
        assert a.n_l1d == 5

    def test_pmu_since(self):
        pmu = Pmu()
        pmu.counters.n_add = 10
        snap = pmu.snapshot()
        pmu.counters.n_add = 25
        assert pmu.since(snap).n_add == 15

    def test_reset_detaches_old_counters(self):
        pmu = Pmu()
        old = pmu.counters
        pmu.reset()
        old.n_add = 50
        assert pmu.counters.n_add == 0
