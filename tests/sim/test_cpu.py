"""Unit tests for the CPU timing model (Table 1's behaviours)."""

import pytest

from repro.errors import ConfigError
from repro.sim.cpu import TimingConfig
from repro.sim.hierarchy import LEVEL_MEM


@pytest.fixture
def warm(machine):
    """A machine with 8 warm lines and counters reset."""
    region = machine.address_space.alloc_lines(8, "warm")
    for i in range(8):
        machine.load(region.line(i))
    machine.reset_measurements()
    return machine, region


class TestTimingConfig:
    def test_rejects_zero_mlp(self):
        with pytest.raises(ConfigError):
            TimingConfig(mlp=0)

    def test_rejects_zero_latency(self):
        with pytest.raises(ConfigError):
            TimingConfig(lat_l1=0)


class TestLoadTiming:
    def test_independent_l1_hit_dual_issue(self, warm):
        machine, region = warm
        for _ in range(100):
            machine.load(region.line(0))
        counters = machine.pmu.counters
        assert counters.cycles == pytest.approx(100 * 0.5)
        assert counters.stall_cycles == 0

    def test_dependent_l1_hit_full_latency(self, warm):
        machine, region = warm
        machine.load(region.line(0), dependent=True)
        counters = machine.pmu.counters
        assert counters.cycles == pytest.approx(4.0)
        assert counters.stall_cycles == pytest.approx(3.0)

    def test_dependent_memory_load_dominated_by_dram(self, machine):
        region = machine.address_space.alloc_lines(1, "cold")
        machine.reset_measurements()
        level = machine.load(region.base, dependent=True)
        assert level == LEVEL_MEM
        lat = machine.config.timing
        expected = lat.lat_l3 + lat.dram_lat_ns * machine.frequency_ghz()
        assert machine.pmu.counters.cycles == pytest.approx(expected)

    def test_independent_miss_overlapped_by_mlp(self, machine):
        region = machine.address_space.alloc_lines(64, "cold")
        machine.set_prefetcher(False)
        machine.reset_measurements()
        for i in range(64):
            machine.load(region.line(i))
        dependent_cost = 64 * (
            machine.config.timing.lat_l3
            + machine.config.timing.dram_lat_ns * machine.frequency_ghz()
        )
        assert machine.pmu.counters.cycles < dependent_cost / 4

    def test_dram_latency_in_cycles_scales_with_frequency(self, machine):
        timing = machine.config.timing
        machine.set_pstate(36)
        lat_hi = machine.cpu._latency[LEVEL_MEM]
        machine.set_pstate(12)
        lat_lo = machine.cpu._latency[LEVEL_MEM]
        assert lat_hi - timing.lat_l3 == pytest.approx(
            3 * (lat_lo - timing.lat_l3)
        )


class TestComputeTiming:
    def test_add_dual_issue(self, machine):
        machine.add(100)
        assert machine.pmu.counters.cycles == pytest.approx(50.0)

    def test_nop_quad_issue(self, machine):
        machine.nop(100)
        assert machine.pmu.counters.cycles == pytest.approx(25.0)

    def test_store_single_issue(self, warm):
        machine, region = warm
        for _ in range(10):
            machine.store(region.line(0))
        assert machine.pmu.counters.cycles == pytest.approx(10.0)

    def test_instruction_counts(self, machine):
        machine.add(3)
        machine.mul(2)
        machine.cmp(1)
        machine.branch(4)
        machine.other(5)
        machine.nop(6)
        counters = machine.pmu.counters
        assert counters.instructions == 21


class TestBulkHelpers:
    def test_load_bytes_issues_one_load_per_word(self, warm):
        machine, region = warm
        machine.load_bytes(region.base, 24)
        assert machine.pmu.counters.n_load_inst == 3

    def test_store_bytes(self, warm):
        machine, region = warm
        machine.store_bytes(region.base, 17)
        assert machine.pmu.counters.n_store_inst == 3

    def test_scan_lines_counts_all_loads(self, machine):
        region = machine.address_space.alloc_lines(16, "scan")
        machine.reset_measurements()
        machine.scan_lines(region.base, 16, loads_per_line=4)
        counters = machine.pmu.counters
        assert counters.n_load_inst == 64
        assert counters.n_l1d == 64

    def test_scan_lines_extra_loads_always_hit(self, machine):
        region = machine.address_space.alloc_lines(16, "scan")
        machine.reset_measurements()
        machine.scan_lines(region.base, 16, loads_per_line=8)
        counters = machine.pmu.counters
        # 7 of 8 loads per line are same-line hits.
        assert counters.l1d_hits >= 16 * 7

    def test_hot_loads_bulk_hits(self, machine):
        region = machine.address_space.alloc_lines(4, "hot")
        machine.reset_measurements()
        machine.hot_loads(region.base, 500)
        counters = machine.pmu.counters
        assert counters.n_load_inst == 500
        assert counters.l1d_hits == 500
        assert counters.stall_cycles == 0

    def test_hot_stores_bulk_hits(self, machine):
        region = machine.address_space.alloc_lines(4, "hot")
        machine.reset_measurements()
        machine.hot_stores(region.base, 300)
        counters = machine.pmu.counters
        assert counters.n_store_l1d_hit == 300

    def test_hot_loads_to_tcm_count_as_tcm(self, arm_machine):
        region = arm_machine.tcm.alloc(512, "hot")
        arm_machine.reset_measurements()
        arm_machine.hot_loads(region.base, 100)
        counters = arm_machine.pmu.counters
        assert counters.n_tcm_load == 100
        assert counters.n_l1d == 0

    def test_hot_loads_zero_is_noop(self, machine):
        machine.reset_measurements()
        machine.hot_loads(12345, 0)
        assert machine.pmu.counters.instructions == 0
