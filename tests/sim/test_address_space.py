"""Unit tests for the simulated address space."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AllocationError
from repro.sim.address_space import (
    LINE_SHIFT,
    LINE_SIZE,
    AddressSpace,
    Region,
    align_up,
)


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(128, 64) == 128

    def test_rounds_up(self):
        assert align_up(129, 64) == 192

    def test_zero(self):
        assert align_up(0, 64) == 0

    @given(st.integers(min_value=0, max_value=1 << 40),
           st.sampled_from([1, 8, 64, 4096]))
    def test_properties(self, value, alignment):
        result = align_up(value, alignment)
        assert result >= value
        assert result % alignment == 0
        assert result - value < alignment


class TestRegion:
    def test_end(self):
        region = Region(base=1024, size=256)
        assert region.end == 1280

    def test_n_lines_exact(self):
        assert Region(base=0, size=128).n_lines == 2

    def test_n_lines_rounds_up(self):
        assert Region(base=0, size=130).n_lines == 3

    def test_line_addresses(self):
        region = Region(base=4096, size=256)
        assert region.line(0) == 4096
        assert region.line(2) == 4096 + 2 * LINE_SIZE

    def test_contains(self):
        region = Region(base=100, size=50)
        assert region.contains(100)
        assert region.contains(149)
        assert not region.contains(150)
        assert not region.contains(99)


class TestAddressSpace:
    def test_allocations_are_disjoint(self):
        space = AddressSpace()
        a = space.alloc(100)
        b = space.alloc(100)
        assert a.end <= b.base or b.end <= a.base

    def test_allocations_line_aligned(self):
        space = AddressSpace()
        for size in (1, 63, 64, 65, 1000):
            region = space.alloc(size)
            assert region.base % LINE_SIZE == 0

    def test_no_line_sharing(self):
        """Two allocations never share a cache line."""
        space = AddressSpace()
        a = space.alloc(1)
        b = space.alloc(1)
        assert (a.base >> LINE_SHIFT) != (b.base >> LINE_SHIFT)

    def test_alloc_lines(self):
        space = AddressSpace()
        region = space.alloc_lines(10)
        assert region.n_lines == 10
        assert region.size == 10 * LINE_SIZE

    def test_zero_size_rejected(self):
        space = AddressSpace()
        with pytest.raises(AllocationError):
            space.alloc(0)

    def test_negative_size_rejected(self):
        space = AddressSpace()
        with pytest.raises(AllocationError):
            space.alloc(-5)

    def test_exhaustion(self):
        space = AddressSpace(size=1024)
        space.alloc(512)
        with pytest.raises(AllocationError):
            space.alloc(1024)

    def test_bytes_allocated_grows(self):
        space = AddressSpace()
        before = space.bytes_allocated
        space.alloc(4096)
        assert space.bytes_allocated >= before + 4096

    def test_labels_recorded(self):
        space = AddressSpace()
        space.alloc(64, label="pages")
        assert space.regions[-1].label == "pages"

    @given(st.lists(st.integers(min_value=1, max_value=10_000),
                    min_size=1, max_size=30))
    def test_many_allocations_disjoint(self, sizes):
        space = AddressSpace()
        regions = [space.alloc(s) for s in sizes]
        spans = sorted((r.base, r.end) for r in regions)
        for (b1, e1), (b2, _e2) in zip(spans, spans[1:]):
            assert e1 <= b2
