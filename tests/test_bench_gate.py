"""Unit tests for the ``repro bench`` regression gate."""

import copy
import json

from repro.bench import check_regression, write_report
from repro.cli import main


def _report(batched=10.0, speedup=6.0, identical=True):
    return {
        "scan_path": {
            "fig07_tpch_scan": {
                "reference_mops": 1.0,
                "batched_mops": 500.0,
                "speedup": 500.0,
                "counters_identical": True,
            },
            "cold_stream_scan": {
                "reference_mops": batched / speedup,
                "batched_mops": batched,
                "speedup": speedup,
                "counters_identical": identical,
            },
        },
        "row_load_run": {"batched_mops": 50.0},
    }


class TestColdScanGate:
    def test_identical_reports_pass(self):
        base = _report()
        assert check_regression(copy.deepcopy(base), base) == []

    def test_throughput_drop_fails(self):
        failures = check_regression(_report(batched=5.0), _report())
        assert any("cold_stream_scan" in f and "Mops/s" in f
                   for f in failures)

    def test_speedup_rot_fails_even_when_absolute_holds(self):
        # A faster CI runner can mask a fast-path rot in absolute Mops/s;
        # the batched/reference ratio must be gated independently.
        failures = check_regression(
            _report(batched=12.0, speedup=1.5), _report(speedup=6.0))
        assert any("speedup" in f for f in failures)

    def test_counter_drift_fails(self):
        failures = check_regression(_report(identical=False), _report())
        assert any("counters_identical" in f for f in failures)

    def test_small_wobble_within_threshold_passes(self):
        failures = check_regression(
            _report(batched=9.0, speedup=5.4), _report())
        assert failures == []

    def test_missing_baseline_entries_are_not_gated(self):
        failures = check_regression(_report(), {"scan_path": {}})
        assert all("below baseline" not in f for f in failures)


def _cli_report(**kw):
    """A full report shaped like run_bench()'s output."""
    report = _report(**kw)
    report["tpch"] = {
        "Q6": {"reference_s": 0.06, "batched_s": 0.04, "speedup": 1.5},
    }
    report["serve"] = {
        "tpch": {
            "reference": {"requests_per_s": 28.0},
            "batched": {"requests_per_s": 50.0},
            "speedup": 1.8,
            "reports_identical": True,
            "run_rows_vs_next_identical": True,
        },
        "engine": {
            "reference": {"requests_per_s": 250.0},
            "batched": {"requests_per_s": 5000.0},
            "speedup": 20.0,
            "reports_identical": True,
        },
    }
    report["serve_scale"] = {
        "completed": 50_000,
        "tenants": 200,
        "wall_s": 13.0,
        "requests_per_s": 3800.0,
        "quanta_per_s": 3800.0,
    }
    report["cluster"] = {
        "cells": {
            "n2_f0": {"energy_per_query_j": 5e-4, "p99_s": 0.01,
                      "conservation_ok": True},
            "n2_f0.05": {"energy_per_query_j": 6e-4, "p99_s": 0.05,
                         "conservation_ok": True},
        },
        "reports_identical": True,
    }
    return report


class TestServeGates:
    def test_identical_reports_pass(self):
        base = _cli_report()
        assert check_regression(copy.deepcopy(base), base) == []

    def test_engine_speedup_rot_fails(self):
        current = _cli_report()
        current["serve"]["engine"]["speedup"] = 8.0
        failures = check_regression(current, _cli_report())
        assert any("serve.engine" in f and "speedup" in f for f in failures)

    def test_engine_report_drift_fails(self):
        current = _cli_report()
        current["serve"]["engine"]["reports_identical"] = False
        failures = check_regression(current, _cli_report())
        assert any("reports_identical" in f for f in failures)

    def test_tpch_mode_ratio_rot_fails(self):
        current = _cli_report()
        current["tpch"]["Q6"]["speedup"] = 0.9
        failures = check_regression(current, _cli_report())
        assert any("tpch.Q6" in f for f in failures)

    def test_serve_scale_throughput_drop_fails(self):
        current = _cli_report()
        current["serve_scale"]["requests_per_s"] = 1000.0
        failures = check_regression(current, _cli_report())
        assert any("serve_scale" in f for f in failures)

    def test_missing_serve_scale_fails(self):
        current = _cli_report()
        del current["serve_scale"]
        failures = check_regression(current, _cli_report())
        assert any("serve_scale" in f and "missing" in f for f in failures)

    def test_serve_tpch_speedup_rot_fails(self):
        current = _cli_report()
        current["serve"]["tpch"]["speedup"] = 1.1
        failures = check_regression(current, _cli_report())
        assert any("serve.tpch" in f and "speedup" in f for f in failures)

    def test_serve_tpch_absolute_floor(self):
        # Even a baseline that itself regressed cannot excuse dropping
        # below the seed revision's 1.22x.
        current = _cli_report()
        current["serve"]["tpch"]["speedup"] = 1.15
        baseline = _cli_report()
        baseline["serve"]["tpch"]["speedup"] = 1.15
        failures = check_regression(current, baseline)
        assert any("serve.tpch" in f and "floor" in f for f in failures)

    def test_serve_tpch_report_drift_fails(self):
        current = _cli_report()
        current["serve"]["tpch"]["reports_identical"] = False
        failures = check_regression(current, _cli_report())
        assert any("serve.tpch: reports_identical" in f for f in failures)

    def test_serve_tpch_protocol_drift_fails(self):
        current = _cli_report()
        current["serve"]["tpch"]["run_rows_vs_next_identical"] = False
        failures = check_regression(current, _cli_report())
        assert any("run_rows_vs_next" in f for f in failures)

    def test_missing_serve_tpch_fails(self):
        current = _cli_report()
        del current["serve"]["tpch"]
        failures = check_regression(current, _cli_report())
        assert any("serve.tpch: section missing" in f for f in failures)


class TestClusterGate:
    def test_identical_reports_pass(self):
        base = _cli_report()
        assert check_regression(copy.deepcopy(base), base) == []

    def test_energy_per_query_regression_fails(self):
        current = _cli_report()
        current["cluster"]["cells"]["n2_f0.05"]["energy_per_query_j"] = 9e-4
        failures = check_regression(current, _cli_report())
        assert any("cluster.n2_f0.05" in f and "energy_per_query_j" in f
                   for f in failures)

    def test_p99_regression_fails(self):
        current = _cli_report()
        current["cluster"]["cells"]["n2_f0"]["p99_s"] = 0.1
        failures = check_regression(current, _cli_report())
        assert any("cluster.n2_f0" in f and "p99_s" in f for f in failures)

    def test_broken_conservation_fails(self):
        current = _cli_report()
        current["cluster"]["cells"]["n2_f0"]["conservation_ok"] = False
        failures = check_regression(current, _cli_report())
        assert any("conservation" in f for f in failures)

    def test_cross_mode_drift_fails(self):
        current = _cli_report()
        current["cluster"]["reports_identical"] = False
        failures = check_regression(current, _cli_report())
        assert any("cluster: reports_identical" in f for f in failures)

    def test_missing_cell_fails(self):
        current = _cli_report()
        del current["cluster"]["cells"]["n2_f0.05"]
        failures = check_regression(current, _cli_report())
        assert any("missing" in f and "n2_f0.05" in f for f in failures)

    def test_missing_section_fails(self):
        current = _cli_report()
        del current["cluster"]
        failures = check_regression(current, _cli_report())
        assert any("cluster: section missing" in f for f in failures)

    def test_improvement_passes(self):
        current = _cli_report()
        current["cluster"]["cells"]["n2_f0"]["energy_per_query_j"] = 1e-4
        assert check_regression(current, _cli_report()) == []


class TestBenchCli:
    def test_check_gates_against_pre_run_baseline(self, tmp_path,
                                                  monkeypatch):
        # --check with the default --out points both at the same file;
        # the gate must compare against the baseline as committed, not
        # the report this run just wrote over it (which always passes).
        import repro.bench

        path = tmp_path / "BENCH_simperf.json"
        path.write_text(json.dumps(_cli_report()))
        degraded = _cli_report(batched=1.0, speedup=1.0)
        monkeypatch.setattr(repro.bench, "run_bench",
                            lambda quick=False: copy.deepcopy(degraded))
        rc = main(["bench", "--quick", "--out", str(path),
                   "--check", str(path)])
        assert rc == 1
        # The degraded report was still written for inspection.
        assert json.loads(path.read_text()) == degraded

    def test_missing_baseline_fails_before_running(self, tmp_path,
                                                   monkeypatch):
        import repro.bench

        def boom(quick=False):
            raise AssertionError("bench ran despite missing baseline")

        monkeypatch.setattr(repro.bench, "run_bench", boom)
        rc = main(["bench", "--quick",
                   "--out", str(tmp_path / "out.json"),
                   "--check", str(tmp_path / "absent.json")])
        assert rc == 2

    def test_write_report_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "bench-smoke" / "BENCH_simperf.json"
        write_report({"version": 1}, str(path))
        assert json.loads(path.read_text()) == {"version": 1}
