"""Tests of the JSONL / Chrome trace_event / flamegraph exporters."""

import io
import json

import pytest

from repro.obs import Tracer, trace_to_chrome, trace_to_jsonl
from repro.obs.export import TRACE_SCHEMA_VERSION
from repro.obs.flamegraph import (
    energy_flamegraph_svg,
    parse_folded,
    trace_to_folded,
    write_flamegraph,
)


@pytest.fixture
def trace(quiet_machine):
    tracer = Tracer(quiet_machine, name="query")
    region = quiet_machine.address_space.alloc(1 << 14, "data")
    with tracer:
        with tracer.span("scan", category="operator"):
            for i in range(region.n_lines):
                quiet_machine.load(region.base + i * 64)
            with tracer.span("io", category="io", page="p0"):
                quiet_machine.disk_read(0, 4096)
        never = tracer.open("never-entered")
        assert never.enters == 0
    return tracer.trace


class TestJsonl:
    def test_every_line_parses(self, trace):
        lines = trace_to_jsonl(trace).splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["record"] == "trace"
        assert records[0]["schema_version"] == TRACE_SCHEMA_VERSION
        assert records[0]["n_spans"] == len(records) - 1

    def test_parent_links_consistent(self, trace):
        records = [json.loads(line)
                   for line in trace_to_jsonl(trace).splitlines()[1:]]
        ids = {r["id"] for r in records}
        assert records[0]["parent"] == -1
        for record in records[1:]:
            assert record["parent"] in ids
        names = {r["name"] for r in records}
        assert {"query", "scan", "io", "never-entered"} <= names

    def test_self_energies_sum_to_total(self, trace):
        records = [json.loads(line)
                   for line in trace_to_jsonl(trace).splitlines()]
        total = records[0]["total_active_j"]
        span_sum = sum(r["self"]["active_j"] for r in records[1:])
        assert span_sum == pytest.approx(total, rel=1e-9)

    def test_write_to_file_object(self, trace):
        from repro.obs import write_jsonl

        buffer = io.StringIO()
        write_jsonl(trace, buffer)
        assert buffer.getvalue().endswith("\n")

    def test_write_to_path(self, trace, tmp_path):
        from repro.obs import write_jsonl

        path = tmp_path / "trace.jsonl"
        write_jsonl(trace, str(path))
        assert path.read_text().count("\n") >= 4


class TestChrome:
    def test_structure(self, trace):
        doc = trace_to_chrome(trace)
        assert isinstance(doc["traceEvents"], list)
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert phases == {"M", "X"}

    def test_x_events_have_numeric_ts_and_dur(self, trace):
        doc = trace_to_chrome(trace)
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert x_events
        for event in x_events:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "self_active_j" in event["args"]

    def test_never_entered_span_skipped(self, trace):
        doc = trace_to_chrome(trace)
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert "never-entered" not in names
        assert "scan" in names and "io" in names

    def test_json_serialisable_and_writable(self, trace, tmp_path):
        from repro.obs import write_chrome_trace

        path = tmp_path / "trace.chrome.json"
        write_chrome_trace(trace, str(path))
        doc = json.loads(path.read_text())
        assert doc["otherData"]["domain"] == trace.domain

    def test_x_event_timestamps_monotonic_per_track(self, trace):
        # Viewers require events sorted by ts within a (pid, tid) track.
        doc = trace_to_chrome(trace)
        by_track: dict = {}
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                by_track.setdefault(
                    (event["pid"], event["tid"]), []
                ).append(event["ts"])
        assert by_track
        for stamps in by_track.values():
            assert stamps == sorted(stamps)


class TestFlamegraph:
    def test_svg_contains_span_names(self, trace):
        svg = energy_flamegraph_svg(trace, title="test flame")
        assert svg.startswith("<svg")
        assert "test flame" in svg
        assert "query" in svg and "scan" in svg

    def test_write(self, trace, tmp_path):
        path = tmp_path / "flame.svg"
        write_flamegraph(trace, path, title="t")
        assert path.read_text().startswith("<svg")

    def test_tooltips_carry_energy(self, trace):
        svg = energy_flamegraph_svg(trace)
        assert "<title>" in svg and " J " in svg


class TestFolded:
    def test_round_trip_exact(self, trace):
        folded = trace_to_folded(trace)
        stacks = parse_folded(folded)
        assert stacks
        # Every value survives text round-trip exactly (repr floats).
        assert parse_folded(folded) == stacks
        total = sum(stacks.values())
        assert total == pytest.approx(trace.total_active_j, rel=1e-12)

    def test_stacks_nest_from_root(self, trace):
        stacks = parse_folded(trace_to_folded(trace))
        root = trace.root.name
        for stack in stacks:
            assert stack[0] == root
        assert any(len(stack) > 1 for stack in stacks)

    def test_merges_repeated_stacks(self):
        text = "a;b 1.5\na;b 2.5\na 1.0\n"
        assert parse_folded(text) == {("a", "b"): 4.0, ("a",): 1.0}
