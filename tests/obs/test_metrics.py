"""Tests of the metrics registry and the built-in machine collectors."""

import pytest

from repro import Machine, tiny_intel
from repro.errors import ConfigError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_series_name,
)


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter("hits", {})
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_gauge_up_and_down(self):
        g = Gauge("depth", {})
        g.set(7)
        g.inc()
        g.dec(3)
        assert g.value == 5

    def test_histogram_buckets_are_cumulative_le(self):
        h = Histogram("lat", {}, buckets=[1.0, 10.0])
        for value in (0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        assert h.count == 4
        assert h.sum == pytest.approx(56.0)
        assert h.mean == pytest.approx(14.0)
        # bucket_counts are per-bucket here; +inf catches the overflow.
        assert h.bucket_counts == [2, 1, 1]

    def test_histogram_quantile(self):
        h = Histogram("lat", {}, buckets=[1.0, 10.0, 100.0])
        for value in (0.1,) * 9 + (50.0,):
            h.observe(value)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 100.0
        with pytest.raises(ConfigError):
            h.quantile(1.5)


class TestRegistry:
    def test_same_series_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("x", {"k": "1"})
        b = reg.counter("x", {"k": "1"})
        c = reg.counter("x", {"k": "2"})
        assert a is b and a is not c

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")

    def test_render_series_name(self):
        assert render_series_name("x", {}) == "x"
        assert render_series_name("x", {"b": "2", "a": "1"}) == "x{a=1,b=2}"

    def test_collectors_run_at_snapshot(self):
        reg = MetricsRegistry()
        state = {"n": 0}

        def collect():
            state["n"] += 1
            reg.gauge("live").set(state["n"])

        reg.add_collector(collect)
        assert reg.snapshot()["live"] == 1
        assert reg.snapshot()["live"] == 2

    def test_snapshot_renders_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=[1.0]).observe(0.5)
        snap = reg.snapshot()["h"]
        assert snap["count"] == 1 and "+inf" in snap["buckets"]

    def test_render_text(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("h").observe(2.0)
        text = reg.render()
        assert "a 1" in text and "count=1" in text


class TestMachineCollectors:
    def test_machine_exports_core_gauges(self, machine):
        region = machine.address_space.alloc(4096, "data")
        for i in range(region.n_lines):
            machine.load(region.base + i * 64)
        snap = machine.metrics.snapshot()
        assert snap["cache.hits{level=L1D}"] + snap["cache.misses{level=L1D}"] > 0
        assert 0.0 <= snap["cache.hit_rate{level=L1D}"] <= 1.0
        assert snap["clock.time_s"] == pytest.approx(machine.time_s)
        assert snap["rapl.package_j"] > 0
        assert snap["dvfs.pstate"] == machine.pstate

    def test_governor_transitions_counted(self):
        from repro.sim.dvfs import EistGovernor

        machine = Machine(tiny_intel())
        machine.set_pstate(8)
        machine.enable_eist(EistGovernor(table=machine.config.pstates,
                                         epoch_seconds=1e-6))
        region = machine.address_space.alloc_lines(8, "w")
        for _ in range(20_000):
            machine.load(region.base)
            machine.governor_tick()
            if machine.pstate == 36:
                break
        snap = machine.metrics.snapshot()
        assert snap["dvfs.governor.transitions{direction=up}"] >= 1

    def test_bufferpool_collector(self, machine):
        from repro.db.bufferpool import BufferPool
        from repro.db.pagestore import PagedFile
        from repro.db.types import Column, INT, Schema

        schema = Schema([Column("k", INT), Column("v", INT)])
        paged = PagedFile(1, schema, 1024)
        paged.append_rows([(i, i) for i in range(500)])
        pool = BufferPool(machine, 2 * 1024, 1024, label="test-pool")
        for page in range(min(paged.n_pages, 5)):
            pool.fetch(paged, page)
        pool.fetch(paged, 0)  # miss again: page 0 was recycled
        snap = machine.metrics.snapshot()
        assert snap["bufferpool.misses{pool=test-pool}"] == pool.misses
        assert snap["bufferpool.recycles{pool=test-pool}"] >= 1
        assert snap["bufferpool.resident_pages{pool=test-pool}"] == 2

    def test_prefetcher_stats_exported(self, machine):
        region = machine.address_space.alloc(1 << 16, "stream")
        for i in range(region.n_lines):
            machine.load(region.base + i * 64)
        snap = machine.metrics.snapshot()
        assert snap["prefetcher.streams_trained"] >= 1
        assert snap["prefetcher.l2_lines_issued"] > 0
