"""Tests of the span tracer's partitioning semantics."""

import pytest

from repro.errors import TraceError
from repro.obs import NULL_TRACER, Tracer
from repro.obs.span import CATEGORY_OPERATOR


def _work(machine, n=64):
    base = machine.address_space.alloc(64 * 64, "work").base
    for i in range(n):
        machine.load(base + (i % 64) * 64)
    machine.add(n)


class TestSpanTree:
    def test_nested_spans_build_a_tree(self, quiet_machine):
        tracer = Tracer(quiet_machine, name="root")
        with tracer:
            with tracer.span("outer"):
                _work(quiet_machine)
                with tracer.span("inner"):
                    _work(quiet_machine)
        trace = tracer.trace
        assert trace.root.name == "root"
        names = [s.name for s in trace.spans()]
        assert names == ["root", "outer", "inner"]
        outer = trace.root.children[0]
        assert outer.children[0].name == "inner"

    def test_finish_is_idempotent(self, quiet_machine):
        tracer = Tracer(quiet_machine)
        with tracer:
            with tracer.span("a"):
                _work(quiet_machine)
        assert tracer.finish() is tracer.finish()

    def test_exit_mismatch_raises(self, quiet_machine):
        tracer = Tracer(quiet_machine)
        a = tracer.open("a")
        b = tracer.open("b")
        tracer.enter(a)
        with pytest.raises(TraceError):
            tracer.exit(b)

    def test_unclosed_span_fails_finish(self, quiet_machine):
        tracer = Tracer(quiet_machine)
        tracer.enter(tracer.open("left-open"))
        with pytest.raises(TraceError):
            tracer.finish()

    def test_installs_itself_on_the_machine(self, quiet_machine):
        assert quiet_machine.tracer is NULL_TRACER
        tracer = Tracer(quiet_machine)
        with tracer:
            assert quiet_machine.tracer is tracer
        assert quiet_machine.tracer is NULL_TRACER


class TestAttributionSemantics:
    def test_self_excludes_children(self, quiet_machine):
        tracer = Tracer(quiet_machine)
        with tracer:
            with tracer.span("outer"):
                _work(quiet_machine, 10)
                with tracer.span("inner"):
                    _work(quiet_machine, 1000)
        trace = tracer.trace
        outer, inner = list(trace.spans())[1:]
        # The inner span's heavy work must not pollute the outer's self.
        assert inner.self_counters.instructions > outer.self_counters.instructions
        inclusive = outer.inclusive_counters()
        assert inclusive.instructions == (
            outer.self_counters.instructions + inner.self_counters.instructions
        )

    def test_partition_is_exact(self, quiet_machine):
        machine = quiet_machine
        before = machine.pmu.snapshot()
        tracer = Tracer(machine)
        with tracer:
            with tracer.span("a"):
                _work(machine, 100)
            with tracer.span("b"):
                _work(machine, 200)
        machine.settle()
        window = machine.pmu.since(before)
        counted = tracer.trace.root.inclusive_counters()
        assert counted.n_l1d == window.n_l1d
        assert counted.instructions == window.instructions

    def test_reentry_accumulates(self, quiet_machine):
        tracer = Tracer(quiet_machine)
        with tracer:
            span = tracer.open("op", category=CATEGORY_OPERATOR)
            for _ in range(5):
                tracer.enter(span)
                _work(quiet_machine, 8)
                tracer.exit(span)
        assert span.enters == 5
        assert span.self_counters.instructions > 0

    def test_never_entered_span_is_empty(self, quiet_machine):
        tracer = Tracer(quiet_machine)
        with tracer:
            span = tracer.open("lazy-op")
            _work(quiet_machine)
        assert span.enters == 0
        assert span.first_ts is None
        assert span.self_counters.instructions == 0

    def test_time_partition(self, quiet_machine):
        tracer = Tracer(quiet_machine)
        t0 = quiet_machine.time_s
        with tracer:
            with tracer.span("a"):
                _work(quiet_machine, 500)
        elapsed = quiet_machine.time_s - t0
        assert tracer.trace.root.inclusive_time_s == pytest.approx(elapsed)


class TestTraceViews:
    def test_render_tree(self, quiet_machine):
        tracer = Tracer(quiet_machine, name="q")
        with tracer:
            with tracer.span("child"):
                _work(quiet_machine)
        text = tracer.trace.render_tree()
        assert "q" in text and "child" in text
        assert "domain=" in text and "J" in text

    def test_render_tree_max_depth(self, quiet_machine):
        tracer = Tracer(quiet_machine, name="q")
        with tracer:
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    _work(quiet_machine)
        text = tracer.trace.render_tree(max_depth=1)
        assert "child" in text and "grandchild" not in text

    def test_breakdown_requires_delta_e(self, quiet_machine):
        tracer = Tracer(quiet_machine)
        with tracer:
            with tracer.span("a"):
                _work(quiet_machine)
        with pytest.raises(ValueError):
            tracer.trace.breakdown(tracer.trace.root)

    def test_breakdown_with_delta_e(self, quiet_machine):
        from repro.core.calibration import calibrate

        cal = calibrate(quiet_machine)
        tracer = Tracer(quiet_machine, background=cal.background,
                        delta_e=cal.delta_e)
        with tracer:
            with tracer.span("a"):
                _work(quiet_machine, 512)
        trace = tracer.trace
        b = trace.breakdown(trace.root, inclusive=True)
        assert b.total > 0


class TestNullTracer:
    def test_span_is_noop_context(self):
        with NULL_TRACER.span("anything", category="io", page="p1"):
            pass

    def test_disabled(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True
