"""Tests of the streaming sampling aggregator (``repro.obs.sampler``).

The load-bearing properties:

* **Conservation** — on a chaos serve run, ``useful_energy_j +
  wasted_energy_j == active_energy_j`` *exactly*, at every exemplar
  rate: sampling only thins the exemplar reservoir, never the
  aggregates.
* **Rate independence** — aggregates (group table, energy totals,
  waste split) are byte-identical across exemplar rates.
* **Full-tracer agreement** — the sampler's totals match the full span
  tracer's on the same seeded run.
"""

import json

import pytest

from repro.faults import FaultPlan
from repro.obs.sampler import NullTelemetry, SamplingAggregator
from repro.serve import ServeConfig, run_serve

#: Fault rates high enough that every run wastes visible joules over
#: several reasons (disk errors, page repair, retries, stalls).
CHAOS = dict(
    faults=FaultPlan(disk_error_p=0.3, request_error_p=0.1,
                     core_stall_p=0.1, page_corrupt_p=0.1),
    retries=2,
)

RATES = (1.0, 0.1, 0.01)


def _chaos_config(**overrides) -> ServeConfig:
    base = dict(
        tier="10MB", queries=24, clients=3, seed=5, scale=64,
        telemetry="sampler", **CHAOS,
    )
    base.update(overrides)
    return ServeConfig(**base)


@pytest.fixture(scope="module")
def chaos_reports():
    """One chaos serve run per exemplar rate (module-scoped: slow)."""
    return {rate: run_serve(_chaos_config(exemplar_rate=rate))
            for rate in RATES}


class TestConservation:
    @pytest.mark.parametrize("rate", RATES)
    def test_useful_plus_wasted_is_active(self, chaos_reports, rate):
        energy = chaos_reports[rate]["energy"]
        assert (energy["useful_energy_j"] + energy["wasted_energy_j"]
                == energy["active_energy_j"])

    def test_waste_is_visible(self, chaos_reports):
        energy = chaos_reports[RATES[0]]["energy"]
        assert energy["wasted_energy_j"] > 0
        assert len(energy["wasted_by_reason_j"]) >= 2

    def test_split_matches_full_tracer(self, chaos_reports):
        full = run_serve(_chaos_config(telemetry="full"))
        sampled = chaos_reports[1.0]
        assert (sampled["energy"]["total_active_j"]
                == pytest.approx(full["energy"]["total_active_j"],
                                 abs=1e-12))
        assert (sampled["energy"]["wasted_energy_j"]
                == pytest.approx(full["energy"]["wasted_energy_j"],
                                 abs=1e-12))
        for reason, joules in full["energy"]["wasted_by_reason_j"].items():
            assert (sampled["energy"]["wasted_by_reason_j"][reason]
                    == pytest.approx(joules, abs=1e-12))


class TestRateIndependence:
    def test_aggregates_identical_across_rates(self, chaos_reports):
        def aggregates(report):
            doc = {
                "energy": report["energy"],
                "counts": report["counts"],
                "latency_s": report["latency_s"],
                "groups": report["telemetry"]["groups"],
            }
            return json.dumps(doc, sort_keys=True)

        baseline = aggregates(chaos_reports[RATES[0]])
        for rate in RATES[1:]:
            assert aggregates(chaos_reports[rate]) == baseline

    def test_exemplar_counts_scale_with_rate(self, chaos_reports):
        offered = [chaos_reports[rate]["telemetry"]["exemplars"]["offered"]
                   for rate in RATES]
        assert offered[0] > offered[1] > offered[2] >= 0


class TestAggregator:
    def test_exemplars_deterministic(self, quiet_machine):
        def run(machine):
            agg = SamplingAggregator(machine, seed=3, exemplar_rate=0.5,
                                     reservoir_size=4)
            region = machine.address_space.alloc(1 << 12, "d")
            with agg:
                for i in range(20):
                    with agg.span(f"work{i}", category="operator", op="W"):
                        machine.load(region.base + (i % 16) * 64)
            return [e.as_dict() for e in agg.finish().exemplars]

        import dataclasses

        from repro import Machine, tiny_intel

        config = dataclasses.replace(tiny_intel(), measurement_noise=0.0)
        first = run(quiet_machine)
        second = run(Machine(config))
        assert first == second
        assert 0 < len(first) <= 4

    def test_group_table_partitions_energy(self, quiet_machine):
        agg = SamplingAggregator(quiet_machine, seed=0)
        region = quiet_machine.address_space.alloc(1 << 12, "d")
        with agg:
            with agg.span("scan", category="operator", op="Scan"):
                for i in range(32):
                    quiet_machine.load(region.base + (i % 16) * 64)
            with agg.span("agg", category="operator", op="Agg"):
                for i in range(16):
                    quiet_machine.store(region.base + i * 64)
        summary = agg.finish()
        rows = summary.group_table()
        total = sum(row["active_j"] for row in rows.values())
        assert total == pytest.approx(summary.total_active_j, rel=1e-9)
        assert any(row["microops"]["load"] > 0 for row in rows.values())
        assert any(row["cache_levels"]["L1D"]["accesses"] > 0
                   for row in rows.values())

    def test_null_telemetry_totals(self, quiet_machine):
        null = NullTelemetry(quiet_machine)
        region = quiet_machine.address_space.alloc(1 << 12, "d")
        with null:
            with null.span("scan", category="operator"):
                for i in range(16):
                    quiet_machine.load(region.base + i * 64)
        summary = null.finish()
        assert summary.total_active_j > 0
        assert summary.group_table() == {}

    def test_invalid_rate_rejected(self, quiet_machine):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            SamplingAggregator(quiet_machine, exemplar_rate=1.5)
        with pytest.raises(ConfigError):
            SamplingAggregator(quiet_machine, reservoir_size=0)


class TestServeModes:
    def test_off_mode_matches_sampler_counts(self, chaos_reports):
        off = run_serve(_chaos_config(telemetry="off"))
        sampled = chaos_reports[1.0]
        assert off["counts"] == sampled["counts"]
        assert (off["energy"]["total_active_j"]
                == pytest.approx(sampled["energy"]["total_active_j"],
                                 abs=1e-12))
        assert "telemetry" in off  # mode recorded even when off
        assert off["telemetry"]["mode"] == "off"
        assert "groups" not in off["telemetry"]

    def test_plain_serve_report_unchanged_by_default(self):
        report = run_serve(ServeConfig(tier="10MB", queries=8, clients=2,
                                       seed=2, scale=64))
        assert "telemetry" not in report
        assert "telemetry" not in report["config"]
