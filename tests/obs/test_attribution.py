"""End-to-end attribution guarantees: spans partition the measured
window (the acceptance criterion), and the default NullTracer leaves an
untraced run bit-identical."""

import dataclasses

import pytest

from repro import Machine, tiny_intel
from repro.db import Database, sqlite_like
from repro.db.types import Column, INT, Schema
from repro.micro.measurement import measure_background, run_measured
from repro.obs import Tracer

SCHEMA = Schema([Column("k", INT), Column("v", INT)])
ROWS = [(i, i % 13) for i in range(800)]
QUERY = "SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v"


def _quiet_machine() -> Machine:
    config = dataclasses.replace(tiny_intel(), measurement_noise=0.0)
    return Machine(config)


def _make_db(machine: Machine) -> Database:
    db = Database(machine, sqlite_like())
    db.create_table("t", SCHEMA, ROWS, primary_key="k")
    return db


class TestSpanEnergySumsToMeasuredActive:
    def test_operator_self_energies_sum_to_window_active(self):
        machine = _quiet_machine()
        db = _make_db(machine)
        background = measure_background(machine)
        db.sql(QUERY)  # warm caches/pools like the CLI does
        tracer = Tracer(machine, background=background)

        def workload() -> None:
            with tracer:
                db.sql(QUERY)

        measurement = run_measured(machine, workload, background,
                                   apply_noise=False)
        trace = tracer.trace
        assert trace.domain == measurement.domain
        span_sum = sum(trace.active_energy_j(s) for s in trace.spans())
        # Acceptance criterion is 1%; the partition is in fact exact.
        assert span_sum == pytest.approx(measurement.active_energy_j,
                                         rel=0.01)
        assert span_sum == pytest.approx(measurement.active_energy_j,
                                         rel=1e-9)
        assert trace.total_active_j == pytest.approx(span_sum, rel=1e-12)

    def test_every_plan_operator_got_a_span(self):
        machine = _quiet_machine()
        db = _make_db(machine)
        tracer = Tracer(machine)
        with tracer:
            db.sql(QUERY)
        ops = [s.name for s in tracer.trace.operator_spans()]
        assert any("Scan" in name for name in ops)
        assert any("Agg" in name for name in ops)
        assert any("Sort" in name for name in ops)
        rows = {s.name: s.meta.get("rows")
                for s in tracer.trace.operator_spans()}
        assert any(n == 13 for n in rows.values())  # 13 groups

    def test_counters_partition_the_pmu_window(self):
        machine = _quiet_machine()
        db = _make_db(machine)
        machine.settle()
        before = machine.pmu.snapshot()
        tracer = Tracer(machine)
        with tracer:
            db.sql(QUERY)
        machine.settle()
        window = machine.pmu.since(before)
        counted = tracer.trace.root.inclusive_counters()
        assert counted.n_l1d == window.n_l1d
        assert counted.n_mem == window.n_mem
        assert counted.instructions == window.instructions


class TestNullTracerZeroDrift:
    def test_traced_run_counters_equal_untraced(self):
        """Tracing is observation-only: the same query on two identical
        machines, one traced and one not, yields identical PMU counters
        (the tracer only adds settle() calls, which price but never add
        work)."""
        plain = _quiet_machine()
        traced = _quiet_machine()
        db_plain = _make_db(plain)
        db_traced = _make_db(traced)

        rows_plain = db_plain.sql(QUERY)
        tracer = Tracer(traced)
        with tracer:
            rows_traced = db_traced.sql(QUERY)

        assert rows_plain == rows_traced
        plain.settle()
        traced.settle()
        assert plain.pmu.snapshot() == traced.pmu.snapshot()
        assert plain.time_s == pytest.approx(traced.time_s)
        assert plain.rapl.energy_package() == pytest.approx(
            traced.rapl.energy_package()
        )

    def test_default_tracer_is_shared_null(self):
        from repro.obs import NULL_TRACER

        machine = _quiet_machine()
        assert machine.tracer is NULL_TRACER
        assert not machine.tracer.enabled
