"""Tests of differential energy attribution (``repro.obs.diff``)."""

import copy
import json

import pytest

from repro.errors import DiffError
from repro.obs.diff import (
    bench_top_regressor,
    diff_snapshots,
    load_snapshot,
    render_diff,
    top_regressor,
)

BENCH_DOC = {
    "schema_version": 2,
    "scan_path": {
        "fig07_tpch_scan": {"batched_mops": 10.0},
        "fig08_datasize_scan": {"100MB": {"batched_mops": 9.0}},
        "cold_stream_scan": {"batched_mops": 5.0},
    },
    "row_load_run": {"batched_mops": 3.0},
    "tpch": {"Q1": {"batched_s": 1.0}},
    "serve": {"batched": {"wall_s": 2.0}},
    "sections_wall_s": {"scan_path.fig07_tpch_scan": 6.0},
}


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc) if isinstance(doc, dict) else doc)
    return str(path)


@pytest.fixture(scope="module")
def serve_pair(tmp_path_factory):
    from repro.serve import ServeConfig, run_serve

    out = tmp_path_factory.mktemp("diff")
    paths = []
    for name, queries, seed in (("a.json", 8, 2), ("b.json", 12, 3)):
        report = run_serve(ServeConfig(
            tier="10MB", queries=queries, clients=2, seed=seed, scale=64,
            telemetry="sampler",
        ))
        path = out / name
        path.write_text(json.dumps(report, sort_keys=True))
        paths.append(str(path))
    return paths


class TestLoad:
    def test_bench_kind(self, tmp_path):
        snap = load_snapshot(_write(tmp_path, "b.json", BENCH_DOC))
        assert snap.kind == "bench"
        assert snap.schema_version == 2
        assert snap.sections["scan_path.cold_stream_scan"]["mops"] == 5.0
        assert snap.sections["scan_path.fig07_tpch_scan"]["wall_s"] == 6.0

    def test_serve_kind(self, serve_pair):
        snap = load_snapshot(serve_pair[0])
        assert snap.kind == "serve"
        assert snap.total_energy_j > 0
        assert snap.operators
        # Count-weighted shares partition each group's energy exactly.
        assert sum(v["energy_j"] for v in snap.microops.values()) == \
            pytest.approx(
                sum(v["energy_j"] for v in snap.operators.values()),
                rel=1e-9)
        assert set(snap.cache_levels) <= {"L1D", "L2", "L3", "mem"}

    def test_unrecognised_doc_refused(self, tmp_path):
        with pytest.raises(DiffError):
            load_snapshot(_write(tmp_path, "x.json", {"hello": 1}))

    def test_timeline_refused_with_pointer(self, tmp_path):
        doc = json.dumps({"record": "timeline", "fields": []}) + "\n"
        with pytest.raises(DiffError, match="time series"):
            load_snapshot(_write(tmp_path, "t.jsonl", doc))

    def test_empty_file_refused(self, tmp_path):
        with pytest.raises(DiffError):
            load_snapshot(_write(tmp_path, "e.json", ""))


class TestDiff:
    def test_kind_mismatch_refused(self, tmp_path, serve_pair):
        bench = load_snapshot(_write(tmp_path, "b.json", BENCH_DOC))
        serve = load_snapshot(serve_pair[0])
        with pytest.raises(DiffError, match="cannot diff"):
            diff_snapshots(bench, serve)

    def test_schema_mismatch_refused(self, tmp_path):
        old = copy.deepcopy(BENCH_DOC)
        del old["schema_version"]
        a = load_snapshot(_write(tmp_path, "old.json", old))
        b = load_snapshot(_write(tmp_path, "new.json", BENCH_DOC))
        with pytest.raises(DiffError, match="schema version mismatch"):
            diff_snapshots(a, b)

    def test_serve_diff_ranked_by_energy(self, serve_pair):
        diff = diff_snapshots(load_snapshot(serve_pair[0]),
                              load_snapshot(serve_pair[1]))
        operators = diff["dims"]["operator"]
        assert operators
        magnitudes = [abs(row["delta_energy_j"] or 0.0)
                      for row in operators]
        assert magnitudes == sorted(magnitudes, reverse=True)
        assert diff["totals"]["delta_energy_j"] is not None
        text = render_diff(diff)
        assert "Δ energy by operator" in text
        assert "Δ energy by cache level" in text

    def test_self_diff_is_zero(self, serve_pair):
        diff = diff_snapshots(load_snapshot(serve_pair[0]),
                              load_snapshot(serve_pair[0]))
        assert diff["totals"]["delta_energy_j"] == 0.0
        for row in diff["dims"]["operator"]:
            assert row["delta_energy_j"] == 0.0


class TestTopRegressor:
    def test_bench_names_worst_section(self):
        worse = copy.deepcopy(BENCH_DOC)
        worse["scan_path"]["cold_stream_scan"]["batched_mops"] = 2.5
        worse["row_load_run"]["batched_mops"] = 2.7
        worst = bench_top_regressor(worse, BENCH_DOC)
        assert worst["name"] == "scan_path.cold_stream_scan"
        assert worst["mops_ratio"] == pytest.approx(0.5)

    def test_no_regression_names_nothing(self):
        assert bench_top_regressor(BENCH_DOC, BENCH_DOC) is None

    def test_serve_names_worst_operator(self, serve_pair):
        diff = diff_snapshots(load_snapshot(serve_pair[0]),
                              load_snapshot(serve_pair[1]))
        worst = top_regressor(diff)
        assert worst is None or worst["delta_energy_j"] > 0
