"""Tests of the simulated-time timeline recorder (``repro.obs.timeline``).

The timeline's field list is a *contract*: the future online controller
reads these windows, so the golden-schema test pins the exact field
tuple and the JSONL header shape.  Renaming or dropping a field must be
a deliberate, versioned act.
"""

import csv
import io
import json

import pytest

from repro.obs.timeline import (
    TIMELINE_CSV_FIELDS,
    TIMELINE_FIELDS,
    TIMELINE_SCHEMA_VERSION,
    TimelineRecorder,
    timeline_to_csv,
    timeline_to_jsonl,
    write_timeline,
)

#: The golden copy of the window schema.  If this test fails, you have
#: changed the controller contract: bump TIMELINE_SCHEMA_VERSION and
#: update docs/observability.md alongside this tuple.
GOLDEN_FIELDS = (
    "window", "t_start_s", "t_end_s", "duration_s",
    "power_w", "core_w", "dram_w", "busy_s", "idle_s",
    "l1d_miss_rate", "l2_miss_rate", "l3_miss_rate",
    "pf_l2_lines", "pf_l3_lines", "pf_hit_rate",
    "pstate_switches", "residency_s",
    "queue_depth_last", "queue_depth_max",
    "admitted", "completed", "failed", "deadline_exceeded",
    "rejected", "shed",
    "active_j", "useful_j", "wasted_j", "wasted_by_reason_j",
)


@pytest.fixture
def rows(quiet_machine):
    recorder = TimelineRecorder(quiet_machine, window_s=0.001)
    region = quiet_machine.address_space.alloc(1 << 14, "d")
    with recorder:
        for i in range(region.n_lines):
            quiet_machine.load(region.base + i * 64)
        quiet_machine.idle(0.0035)
        for i in range(region.n_lines):
            quiet_machine.load(region.base + i * 64)
    return recorder.finish()


class TestSchema:
    def test_golden_field_tuple(self):
        assert TIMELINE_FIELDS == GOLDEN_FIELDS
        assert TIMELINE_SCHEMA_VERSION == 1

    def test_every_row_has_every_field(self, rows):
        for row in rows:
            assert tuple(row.keys()) == TIMELINE_FIELDS

    def test_csv_fields_are_flat_subset(self):
        flat = set(TIMELINE_FIELDS) - {"residency_s", "wasted_by_reason_j"}
        assert set(TIMELINE_CSV_FIELDS) == flat | {"pstate_mode"}


class TestWindows:
    def test_contiguous_and_indexed(self, rows):
        assert rows, "run must span at least one window"
        for i, row in enumerate(rows):
            assert row["window"] == i
        for prev, cur in zip(rows, rows[1:]):
            assert cur["t_start_s"] == pytest.approx(prev["t_end_s"])

    def test_time_prorated_exactly(self, rows, quiet_machine):
        total = sum(r["busy_s"] + r["idle_s"] for r in rows)
        span = rows[-1]["t_end_s"] - rows[0]["t_start_s"]
        assert total == pytest.approx(span, rel=1e-9)
        assert sum(r["idle_s"] for r in rows) == pytest.approx(
            0.0035, rel=1e-9)

    def test_idle_window_has_zero_miss_rates(self, rows):
        # The idle(0.0035) stretch covers whole windows with no memory
        # accesses: their miss rates must be None, not 0/0 noise.
        all_idle = [r for r in rows
                    if r["idle_s"] > 0 and r["busy_s"] == 0.0]
        assert all_idle
        for row in all_idle:
            assert row["l1d_miss_rate"] is None
            assert row["power_w"] >= 0.0

    def test_energy_sums_to_machine(self, rows, quiet_machine):
        total_j = sum(r["power_w"] * r["duration_s"] for r in rows)
        assert total_j == pytest.approx(
            quiet_machine.rapl.energy_package(), rel=1e-6)


class TestWriters:
    def test_jsonl_header_contract(self, rows):
        lines = timeline_to_jsonl(rows, window_s=0.001).splitlines()
        header = json.loads(lines[0])
        assert header["record"] == "timeline"
        assert header["schema_version"] == TIMELINE_SCHEMA_VERSION
        assert header["n_windows"] == len(rows) == len(lines) - 1
        assert tuple(header["fields"]) == TIMELINE_FIELDS
        for line in lines[1:]:
            record = json.loads(line)
            assert record["record"] == "window"

    def test_csv_round_trips(self, rows):
        text = timeline_to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == len(rows)
        assert list(parsed[0].keys()) == list(TIMELINE_CSV_FIELDS)
        for raw, row in zip(parsed, rows):
            assert int(raw["window"]) == row["window"]
            assert float(raw["active_j"]) == pytest.approx(
                row["active_j"], abs=1e-15)

    def test_write_timeline_picks_format(self, rows, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        csv_path = tmp_path / "t.csv"
        write_timeline(rows, str(jsonl), window_s=0.001)
        write_timeline(rows, str(csv_path), window_s=0.001)
        assert jsonl.read_text().startswith('{"fields"') or \
            json.loads(jsonl.read_text().splitlines()[0])["record"] == \
            "timeline"
        assert csv_path.read_text().splitlines()[0].startswith("window,")


class TestServeIntegration:
    def test_serve_emits_timeline(self, tmp_path):
        from repro.serve import ServeConfig, run_serve

        out = tmp_path / "timeline.jsonl"
        report = run_serve(ServeConfig(
            tier="10MB", queries=8, clients=2, seed=2, scale=64,
            telemetry="sampler", timeline_out=str(out),
            timeline_window_s=0.02,
        ))
        lines = out.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["record"] == "timeline"
        rows = [json.loads(line) for line in lines[1:]]
        assert rows
        # Window energy is package-domain (the controller contract);
        # the report's Active total may also count DRAM, so the window
        # sum is a lower bound that tracks the total closely.
        active = sum(r["active_j"] for r in rows)
        total = report["energy"]["total_active_j"]
        assert 0 < active <= total + 1e-12
        assert active == pytest.approx(total, rel=0.15)
        assert sum(r["completed"] for r in rows) == \
            report["counts"]["completed"]
