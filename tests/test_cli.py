"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_ids_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_profile_query_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "-q", "23"])

    def test_defaults(self):
        args = build_parser().parse_args(["calibrate"])
        assert args.scale == 16 and args.tier == "100MB"

    def test_verbose_accepted_before_or_after_command(self):
        args = build_parser().parse_args(["-vv", "trace", "SELECT 1"])
        assert args.verbose == 2
        args = build_parser().parse_args(["trace", "-v", "SELECT 1"])
        assert args.verbose == 1
        args = build_parser().parse_args(["trace", "SELECT 1"])
        assert args.verbose == 0

    def test_trace_statement_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.out == "BENCH_simperf.json"
        assert args.quick is False and args.check is None
        assert args.max_regression == 0.30
        args = build_parser().parse_args(
            ["bench", "--quick", "--check", "base.json",
             "--max-regression", "0.5"]
        )
        assert args.quick and args.check == "base.json"
        assert args.max_regression == 0.5


class TestCommands:
    def test_calibrate(self, capsys):
        assert main(["calibrate", "--scale", "16"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out and "Table 3" in out

    def test_profile_one_query(self, capsys):
        assert main(["profile", "--tier", "10MB", "-q", "6",
                     "--engine", "sqlite"]) == 0
        out = capsys.readouterr().out
        assert "Q6" in out and "E_L1D%" in out

    def test_sql(self, capsys):
        assert main(["sql", "--tier", "10MB",
                     "SELECT COUNT(*) FROM orders"]) == 0
        out = capsys.readouterr().out
        assert "E_active" in out

    def test_experiment(self, capsys):
        assert main(["experiment", "tab01"]) == 0
        out = capsys.readouterr().out
        assert "tab01" in out and "PASS" in out

    def test_calibrate_json(self, capsys):
        assert main(["calibrate", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["delta_e_nj"]["dE_L1D"] > 0
        assert data["verification"]["average_accuracy_pct"] > 90
        assert data["verification"]["rows"]

    def test_profile_json(self, capsys):
        assert main(["profile", "--tier", "10MB", "-q", "6", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        q6 = data["queries"]["Q6"]
        assert q6["active_energy_j"] > 0
        assert set(q6["components_j"]) == set(q6["shares_pct"])
        assert sum(q6["shares_pct"].values()) == pytest.approx(100.0)


class TestTraceCommand:
    def test_trace_exports_and_balances(self, capsys, tmp_path):
        out_dir = tmp_path / "traces"
        assert main(["trace", "--tier", "10MB", "--out", str(out_dir),
                     "--metrics", "SELECT COUNT(*) FROM region"]) == 0
        out = capsys.readouterr().out
        assert "SeqScan(region)" in out
        assert "span-sum" in out
        assert "cache.hit_rate{level=L1D}" in out

        records = [json.loads(line) for line in
                   (out_dir / "trace.jsonl").read_text().splitlines()]
        assert records[0]["record"] == "trace"
        span_sum = sum(r["self"]["active_j"] for r in records[1:])
        assert span_sum == pytest.approx(records[0]["total_active_j"],
                                         rel=0.01)
        # Spans were priced: the dE table travelled into the export.
        assert "breakdown_j" in records[1]["self"]

        chrome = json.loads((out_dir / "trace.chrome.json").read_text())
        assert any(e["ph"] == "X" for e in chrome["traceEvents"])
        assert (out_dir / "trace.svg").read_text().startswith("<svg")

    def test_profile_trace_out(self, capsys, tmp_path):
        out_dir = tmp_path / "ptraces"
        assert main(["profile", "--tier", "10MB", "-q", "6",
                     "--trace-out", str(out_dir)]) == 0
        assert (out_dir / "q06.jsonl").exists()
        assert (out_dir / "q06.chrome.json").exists()
        assert (out_dir / "q06.svg").exists()


class TestVersionAndErrors:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_repro_error_is_one_line_exit_2(self, capsys):
        assert main(["sql", "--tier", "10MB",
                     "SELECT * FROM nowhere"]) == 2
        err = capsys.readouterr().err
        last = err.strip().splitlines()[-1]  # progress notes may precede
        assert last.startswith("repro sql: error:")
        assert "nowhere" in last
        assert "Traceback" not in err

    def test_invalid_choice_exits_nonzero(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--workload", "oltp-9000"])
        assert exc.value.code != 0

    def test_serve_config_error_exit_2(self, capsys):
        assert main(["serve", "--clients", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro serve: error:")
        assert "client" in err


class TestServeCommand:
    def test_parse_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.workload == "tpch" and args.policy == "fifo"
        assert args.clients == 4 and args.mode == "closed"
        assert args.dvfs == "race" and args.seed == 0

    def test_serve_emits_report(self, capsys):
        assert main(["serve", "--workload", "basic", "--tier", "10MB",
                     "--clients", "2", "--queries", "4",
                     "--cores", "1", "--seed", "11"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counts"]["completed"] == 4
        assert report["energy"]["check_sum_j"] == pytest.approx(
            report["energy"]["total_active_j"], rel=1e-12)

    def test_serve_out_file_deterministic(self, tmp_path, capsys):
        argv = ["serve", "--workload", "basic", "--tier", "10MB",
                "--clients", "4", "--queries", "8", "--seed", "5"]
        out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(argv + ["--out", str(out_a)]) == 0
        assert main(argv + ["--out", str(out_b)]) == 0
        capsys.readouterr()
        assert out_a.read_text() == out_b.read_text()


class TestChaosCommand:
    ARGV = ["chaos", "--workload", "basic", "--tier", "10MB",
            "--clients", "2", "--queries", "4", "--cores", "1",
            "--seed", "11"]

    def test_parse_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.scenario == "mixed"
        assert args.retries == 2 and args.retry_backoff == 0.005
        assert args.breaker_threshold is None and args.deadline is None
        assert args.request_error_p is None  # flags override the scenario

    def test_chaos_prints_summary(self, capsys):
        assert main(self.ARGV + ["--scenario", "flaky"]) == 0
        out = capsys.readouterr().out
        assert "requests:" in out
        assert "useful" in out and "wasted" in out

    def test_chaos_json_has_resilience_section(self, capsys):
        assert main(self.ARGV + ["--scenario", "flaky", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert "resilience" in report
        assert report["config"]["faults"]["request_error_p"] > 0
        energy = report["energy"]
        assert (energy["useful_energy_j"] + energy["wasted_energy_j"]
                == energy["active_energy_j"])

    def test_chaos_out_file_deterministic(self, tmp_path, capsys):
        argv = self.ARGV + ["--scenario", "mixed", "--seed", "7"]
        out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(argv + ["--out", str(out_a)]) == 0
        assert main(argv + ["--out", str(out_b)]) == 0
        capsys.readouterr()
        assert out_a.read_text() == out_b.read_text()

    def test_flag_overrides_scenario(self, capsys):
        assert main(self.ARGV + ["--scenario", "none",
                                 "--request-error-p", "0.25",
                                 "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["config"]["faults"]["request_error_p"] == 0.25

    def test_bad_probability_exits_2(self, capsys):
        assert main(self.ARGV + ["--corrupt-p", "2.0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro chaos: error:")
        assert "Traceback" not in err
