"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_ids_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_profile_query_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "-q", "23"])

    def test_defaults(self):
        args = build_parser().parse_args(["calibrate"])
        assert args.scale == 16 and args.tier == "100MB"


class TestCommands:
    def test_calibrate(self, capsys):
        assert main(["calibrate", "--scale", "16"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out and "Table 3" in out

    def test_profile_one_query(self, capsys):
        assert main(["profile", "--tier", "10MB", "-q", "6",
                     "--engine", "sqlite"]) == 0
        out = capsys.readouterr().out
        assert "Q6" in out and "E_L1D%" in out

    def test_sql(self, capsys):
        assert main(["sql", "--tier", "10MB",
                     "SELECT COUNT(*) FROM orders"]) == 0
        out = capsys.readouterr().out
        assert "E_active" in out

    def test_experiment(self, capsys):
        assert main(["experiment", "tab01"]) == 0
        out = capsys.readouterr().out
        assert "tab01" in out and "PASS" in out
