"""Unit tests of admission control: queue bound, quotas, shedding."""

import pytest

from repro.errors import ConfigError, ServeError
from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import AdmissionController
from repro.serve.request import (
    QUEUED,
    REJECTED_QUEUE,
    REJECTED_QUOTA,
    RUNNING,
    SHED_TIMEOUT,
    JobTemplate,
    Request,
)


def job(name="j", cost=1.0, tables=("t",)):
    return JobTemplate(name=name, tables=tuple(tables), cost=cost,
                       make=lambda slot: iter(()))


def request(i, tenant="tenant0", arrival=0.0):
    return Request(request_id=i, tenant=tenant, client=i, job=job(),
                   arrival_s=arrival)


@pytest.fixture
def metrics():
    return MetricsRegistry()


class TestQueueBound:
    def test_admits_until_full(self, metrics):
        ac = AdmissionController(metrics, max_queue=2)
        assert ac.offer(request(0), 0.0)
        assert ac.offer(request(1), 0.0)
        assert len(ac.queue) == 2

    def test_rejects_past_bound(self, metrics):
        ac = AdmissionController(metrics, max_queue=1)
        assert ac.offer(request(0), 0.0)
        r = request(1)
        assert not ac.offer(r, 0.0)
        assert r.state == REJECTED_QUEUE
        assert r.finish_s == 0.0
        snap = metrics.snapshot()
        assert snap["serve.rejected{reason=queue}"] == 1
        assert snap["serve.admitted"] == 1

    def test_take_frees_a_slot(self, metrics):
        ac = AdmissionController(metrics, max_queue=1)
        r0 = request(0)
        ac.offer(r0, 0.0)
        ac.take(r0, 0.1)
        assert r0.state == RUNNING and r0.start_s == 0.1
        assert ac.offer(request(1), 0.2)

    def test_invalid_bounds_rejected(self, metrics):
        with pytest.raises(ConfigError):
            AdmissionController(metrics, max_queue=0)
        with pytest.raises(ConfigError):
            AdmissionController(metrics, tenant_quota=0)
        with pytest.raises(ConfigError):
            AdmissionController(metrics, queue_timeout_s=0.0)


class TestTenantQuota:
    def test_quota_counts_queued_and_running(self, metrics):
        ac = AdmissionController(metrics, max_queue=10, tenant_quota=2)
        r0, r1 = request(0), request(1)
        ac.offer(r0, 0.0)
        ac.offer(r1, 0.0)
        ac.take(r0, 0.0)  # running still occupies the quota slot
        r2 = request(2)
        assert not ac.offer(r2, 0.0)
        assert r2.state == REJECTED_QUOTA
        assert metrics.snapshot()["serve.rejected{reason=quota}"] == 1

    def test_release_frees_quota(self, metrics):
        ac = AdmissionController(metrics, max_queue=10, tenant_quota=1)
        r0 = request(0)
        ac.offer(r0, 0.0)
        ac.take(r0, 0.0)
        ac.release(r0)
        assert ac.offer(request(1), 0.1)

    def test_quota_is_per_tenant(self, metrics):
        ac = AdmissionController(metrics, max_queue=10, tenant_quota=1)
        assert ac.offer(request(0, tenant="tenant0"), 0.0)
        assert ac.offer(request(1, tenant="tenant1"), 0.0)
        assert not ac.offer(request(2, tenant="tenant0"), 0.0)


class TestTimeoutShedding:
    def test_expired_waiters_are_shed(self, metrics):
        ac = AdmissionController(metrics, max_queue=10, queue_timeout_s=1.0)
        stale = request(0, arrival=0.0)
        fresh = request(1, arrival=1.5)
        ac.offer(stale, 0.0)
        ac.offer(fresh, 1.5)  # touching the queue sheds the stale waiter
        survivors = ac.candidates(2.0)
        assert list(survivors) == [fresh]
        assert stale.state == SHED_TIMEOUT and stale.finish_s == 1.5
        assert ac.shed == [stale]
        assert metrics.snapshot()["serve.shed"] == 1

    def test_shedding_frees_quota(self, metrics):
        ac = AdmissionController(metrics, max_queue=10, tenant_quota=1,
                                 queue_timeout_s=0.5)
        ac.offer(request(0, arrival=0.0), 0.0)
        late = request(1, arrival=2.0)
        assert ac.offer(late, 2.0)  # the stale one was shed at offer time
        assert late.state == QUEUED

    def test_no_timeout_means_no_shedding(self, metrics):
        ac = AdmissionController(metrics, max_queue=10)
        r = request(0, arrival=0.0)
        ac.offer(r, 0.0)
        assert list(ac.candidates(1e9)) == [r]


class TestEdgeCases:
    def test_queue_full_checked_before_quota(self, metrics):
        """When both bounds would reject, the queue bound wins: the
        request never reaches the quota check."""
        ac = AdmissionController(metrics, max_queue=1, tenant_quota=1)
        ac.offer(request(0), 0.0)
        r = request(1)  # same tenant: over quota AND queue full
        assert not ac.offer(r, 0.0)
        assert r.state == REJECTED_QUEUE
        snap = metrics.snapshot()
        assert snap["serve.rejected{reason=queue}"] == 1
        assert "serve.rejected{reason=quota}" not in snap

    def test_wait_exactly_at_timeout_is_not_shed(self, metrics):
        """Shedding is strict: a waiter at exactly queue_timeout_s
        survives; one an instant past it is shed with finish_s = now."""
        ac = AdmissionController(metrics, max_queue=10, queue_timeout_s=1.0)
        boundary = request(0, arrival=0.0)
        ac.offer(boundary, 0.0)
        assert list(ac.candidates(1.0)) == [boundary]  # waited exactly 1.0
        survivors = ac.candidates(1.0 + 1e-9)
        assert list(survivors) == []
        assert boundary.state == SHED_TIMEOUT
        assert boundary.finish_s == 1.0 + 1e-9

    def test_shed_then_offer_counters_stay_consistent(self, metrics):
        """admitted + rejected partitions the offers even when shedding
        interleaves with rejections."""
        ac = AdmissionController(metrics, max_queue=2, queue_timeout_s=0.5)
        ac.offer(request(0, arrival=0.0), 0.0)
        ac.offer(request(1, arrival=0.0), 0.0)
        assert not ac.offer(request(2, arrival=0.1), 0.1)  # queue full
        assert ac.offer(request(3, arrival=1.0), 1.0)  # 0 and 1 shed
        snap = metrics.snapshot()
        offers = 4
        assert (snap["serve.admitted"]
                + snap["serve.rejected{reason=queue}"]) == offers
        assert snap["serve.shed"] == 2
        assert snap["serve.queue_depth"] == len(ac.queue) == 1

    def test_unrecorded_offer_skips_counters(self, metrics):
        """Retry re-arrivals use record=False: the request is queued but
        the first-offer counters are untouched."""
        ac = AdmissionController(metrics, max_queue=1)
        r0 = request(0)
        assert ac.offer(r0, 0.0, record=False)
        assert r0.state == QUEUED
        rejected = request(1)
        assert not ac.offer(rejected, 0.0, record=False)
        assert rejected.state == REJECTED_QUEUE
        snap = metrics.snapshot()
        assert "serve.admitted" not in snap
        assert "serve.rejected{reason=queue}" not in snap

    def test_take_of_unqueued_request_raises(self, metrics):
        ac = AdmissionController(metrics, max_queue=2)
        r = request(0)
        ac.offer(r, 0.0)
        ac.take(r, 0.0)
        with pytest.raises(ServeError):
            ac.take(r, 0.1)  # already running, no longer queued
