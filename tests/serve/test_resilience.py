"""Resilient serving under injected faults: retries, deadlines, the
circuit breaker, and the exact useful/wasted energy split."""

import json

import pytest

from repro.errors import ConfigError, FaultError
from repro.faults import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.serve import ServeConfig, run_serve
from repro.serve.request import JobTemplate, Request
from repro.serve.resilience import CircuitBreaker, RetryManager


def small_config(**overrides) -> ServeConfig:
    base = dict(workload="basic", clients=4, queries=8, tenants=2,
                cores=2, mpl=2, quantum_rows=8, seed=42, tier="10MB",
                mode="closed")
    base.update(overrides)
    return ServeConfig(**base)


def request(i, failures=0):
    job = JobTemplate(name="j", tables=("t",), cost=1.0,
                      make=lambda slot: iter(()))
    return Request(request_id=i, tenant="tenant0", client=i, job=job,
                   arrival_s=0.0, failures=failures)


class TestRetryManager:
    def test_respects_per_request_limit(self):
        retry = RetryManager(root_seed=1, max_retries=2)
        r = request(0, failures=1)
        assert retry.admit_retry(r)
        r.failures = 3  # past the limit
        assert not retry.admit_retry(r)

    def test_budget_is_global(self):
        retry = RetryManager(root_seed=1, max_retries=5, budget=2)
        assert retry.admit_retry(request(0, failures=1))
        assert retry.admit_retry(request(1, failures=1))
        assert not retry.admit_retry(request(2, failures=1))
        assert retry.spent == 2

    def test_backoff_doubles_per_failure(self):
        retry = RetryManager(root_seed=1, backoff_s=0.01, jitter=0.0)
        assert retry.backoff_s(request(0, failures=1)) == pytest.approx(0.01)
        assert retry.backoff_s(request(0, failures=3)) == pytest.approx(0.04)

    def test_jitter_is_deterministic_and_bounded(self):
        a = RetryManager(root_seed=9, backoff_s=0.01, jitter=0.5)
        b = RetryManager(root_seed=9, backoff_s=0.01, jitter=0.5)
        r = request(4, failures=2)
        assert a.backoff_s(r) == b.backoff_s(r)
        assert 0.01 <= a.backoff_s(r) <= 0.03
        # A different attempt of the same request draws differently.
        assert a.backoff_s(r) != a.backoff_s(request(4, failures=3))

    def test_counter_recorded(self):
        metrics = MetricsRegistry()
        retry = RetryManager(root_seed=1, metrics=metrics)
        retry.admit_retry(request(0, failures=1))
        assert metrics.snapshot()["serve.retries"] == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryManager(root_seed=1, max_retries=-1)
        with pytest.raises(ConfigError):
            RetryManager(root_seed=1, backoff_s=0.0)
        with pytest.raises(ConfigError):
            RetryManager(root_seed=1, jitter=1.0)


class TestCircuitBreaker:
    def test_trips_on_full_failing_window(self):
        breaker = CircuitBreaker(0.5, window=4, cooloff_s=1.0)
        for _ in range(3):
            breaker.record(False, now=0.0)
        assert not breaker.degraded(0.0)  # window not yet full
        breaker.record(False, now=0.0)
        assert breaker.trips == 1
        assert breaker.degraded(0.5)

    def test_cooloff_closes_in_sim_time(self):
        breaker = CircuitBreaker(0.5, window=2, cooloff_s=1.0)
        breaker.record(False, now=0.0)
        breaker.record(False, now=0.0)
        assert breaker.degraded(0.9)
        assert not breaker.degraded(1.0)
        assert breaker.open_until is None

    def test_successes_keep_it_closed(self):
        breaker = CircuitBreaker(0.75, window=4, cooloff_s=1.0)
        for outcome in (True, True, True, False) * 5:
            breaker.record(outcome, now=0.0)
        assert breaker.trips == 0

    def test_window_cleared_on_trip(self):
        breaker = CircuitBreaker(0.5, window=2, cooloff_s=0.1)
        breaker.record(False, 0.0)
        breaker.record(False, 0.0)
        assert breaker.trips == 1
        # After the cooloff one more failure is not a full window yet.
        breaker.record(False, 1.0)
        assert breaker.trips == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            CircuitBreaker(0.0)
        with pytest.raises(ConfigError):
            CircuitBreaker(0.5, window=0)
        with pytest.raises(ConfigError):
            CircuitBreaker(0.5, cooloff_s=0.0)

    def test_half_open_recovery_after_window_clears(self):
        """Regression: outcomes observed while the breaker is open must
        be dropped, not windowed.  Before the fix, failures recorded
        during the cooloff lingered in the sliding window and re-tripped
        the breaker on the very first post-cooloff *success*, so the
        server never actually left degraded mode under sustained load.
        """
        breaker = CircuitBreaker(0.5, window=2, cooloff_s=0.1)
        breaker.record(False, 0.0)
        breaker.record(False, 0.0)
        assert breaker.trips == 1
        assert breaker.degraded(0.05)
        # In-flight attempts keep failing during the cooloff...
        breaker.record(False, 0.05)
        breaker.record(False, 0.06)
        # ...but the first post-cooloff outcome is a success: the breaker
        # must close and judge only fresh evidence.
        breaker.record(True, 0.2)
        assert breaker.trips == 1
        assert not breaker.degraded(0.2)
        assert list(breaker.outcomes) == [True]
        # A healthy full window keeps it closed for good.
        breaker.record(True, 0.21)
        assert breaker.trips == 1
        assert not breaker.degraded(0.3)


class TestPlainRunUnchanged:
    """A config with no resilience switched on must not change shape."""

    def test_no_resilience_keys(self):
        report = run_serve(small_config())
        assert "resilience" not in report
        assert "useful_energy_j" not in report["energy"]
        assert "failed" not in report["counts"]
        assert "faults" not in report["config"]

    def test_all_zero_fault_plan_is_free(self):
        """FaultPlan() with every probability zero arms nothing: the
        energies match a plain run bit for bit (pay-as-you-go)."""
        plain = run_serve(small_config())
        chaos = run_serve(small_config(faults=FaultPlan()))
        assert "resilience" in chaos  # the section exists...
        assert chaos["resilience"]["faults_injected"] == {}
        # ...but the simulation itself is untouched.
        assert (chaos["energy"]["total_active_j"]
                == plain["energy"]["total_active_j"])
        assert chaos["clock"] == plain["clock"]
        assert chaos["counts"]["completed"] == plain["counts"]["completed"]


class TestChaosServing:
    def chaos_config(self, **overrides):
        base = dict(faults=FaultPlan(request_error_p=0.1), retries=3,
                    retry_jitter=0.0)
        base.update(overrides)
        return small_config(**base)

    def test_retries_recover_failed_attempts(self):
        report = run_serve(self.chaos_config())
        counts = report["counts"]
        res = report["resilience"]
        assert res["faults_injected"].get("request.error", 0) > 0
        assert res["retries_spent"] > 0
        terminal = (counts["completed"] + counts["failed"]
                    + counts["deadline_exceeded"] + counts["shed_degraded"]
                    + counts["rejected_queue"] + counts["rejected_quota"]
                    + counts["shed_timeout"])
        assert terminal == counts["issued"]
        assert counts["completed"] > 0

    def test_energy_split_identity_is_exact(self):
        report = run_serve(self.chaos_config())
        energy = report["energy"]
        # The acceptance identity: exact float equality by construction.
        assert (energy["useful_energy_j"] + energy["wasted_energy_j"]
                == energy["active_energy_j"])
        # And the split is a partition of the measured total.
        assert energy["active_energy_j"] == pytest.approx(
            energy["total_active_j"], rel=1e-9)
        assert energy["wasted_energy_j"] > 0
        assert sum(energy["wasted_by_reason_j"].values()) == pytest.approx(
            energy["wasted_energy_j"], rel=1e-12)

    def test_retried_energy_classified_as_wasted(self):
        report = run_serve(self.chaos_config())
        reasons = report["energy"]["wasted_by_reason_j"]
        assert "retried" in reasons or "failed" in reasons

    def test_same_seed_byte_identical_reports(self):
        config = self.chaos_config(
            faults=FaultPlan(request_error_p=0.1, core_stall_p=0.1),
            breaker_threshold=0.5, breaker_window=4,
        )
        a = json.dumps(run_serve(config), indent=2, sort_keys=True)
        b = json.dumps(run_serve(config), indent=2, sort_keys=True)
        assert a == b

    def test_different_seed_differs(self):
        a = run_serve(self.chaos_config(seed=42))
        b = run_serve(self.chaos_config(seed=43))
        assert (a["energy"]["total_active_j"]
                != b["energy"]["total_active_j"])

    def test_fail_fast_without_retries(self):
        report = run_serve(small_config(
            faults=FaultPlan(request_error_p=1.0), retries=0))
        counts = report["counts"]
        assert counts["completed"] == 0
        assert counts["failed"] == counts["issued"]
        # Everything the run burned was wasted.
        energy = report["energy"]
        assert energy["wasted_energy_j"] > 0
        assert "failed" in energy["wasted_by_reason_j"]

    def test_deadline_abandons_requests(self):
        report = run_serve(small_config(deadline_s=1e-7))
        counts = report["counts"]
        assert counts["deadline_exceeded"] > 0
        assert counts["completed"] + counts["deadline_exceeded"] == \
            counts["issued"]
        assert "deadline_exceeded" in report["energy"]["wasted_by_reason_j"]
        assert report["counters"]["serve.deadline_exceeded"] == \
            counts["deadline_exceeded"]

    def test_breaker_trips_and_sheds_low_priority(self):
        report = run_serve(small_config(
            faults=FaultPlan(request_error_p=1.0),
            retries=0,
            breaker_threshold=0.5,
            breaker_window=4,
            breaker_cooloff_s=10.0,  # stay open for the whole run
            degrade_keep_tenants=1,
        ))
        res = report["resilience"]
        counts = report["counts"]
        assert res["breaker_trips"] >= 1
        assert counts["shed_degraded"] > 0
        # Only tenant1 (the low-priority tenant) is shed.
        assert report["tenants"]["tenant1"]["counts"]["shed_degraded"] > 0
        assert report["tenants"]["tenant0"]["counts"]["shed_degraded"] == 0

    def test_disk_and_corruption_faults_are_repaired(self):
        report = run_serve(ServeConfig(
            workload="tpch", clients=2, queries=10, tenants=2, cores=2,
            quantum_rows=32, seed=7, tier="10MB",
            faults=FaultPlan(disk_error_p=0.2, disk_slow_p=0.2,
                             page_corrupt_p=0.2),
            retries=2, retry_jitter=0.0,
        ))
        res = report["resilience"]
        injected = res["faults_injected"]
        assert injected.get("disk.error", 0) > 0
        assert injected.get("disk.slow", 0) > 0
        assert res["disk_fault_errors"] == injected["disk.error"]
        # Transparent IO retries absorbed the transient errors.
        assert res["disk_read_retries"] > 0
        assert report["counts"]["completed"] > 0
        energy = report["energy"]
        assert (energy["useful_energy_j"] + energy["wasted_energy_j"]
                == energy["active_energy_j"])

    def test_core_stalls_charged_as_time(self):
        report = run_serve(small_config(
            faults=FaultPlan(core_stall_p=0.5, core_stall_s=1e-3)))
        res = report["resilience"]
        assert res["core_stalls"] > 0
        assert res["core_stalls"] == \
            report["counters"]["cores.stalls"]

    def test_metrics_counter_consistency(self):
        report = run_serve(self.chaos_config())
        counters = report["counters"]
        admitted = counters.get("serve.admitted", 0)
        rejected = sum(v for name, v in counters.items()
                       if name.startswith("serve.rejected"))
        shed_degraded = counters.get("serve.shed_degraded", 0)
        # First offers only: retries re-enter with record=False, so
        # admission counters still partition the issued requests.
        assert admitted + rejected + shed_degraded == \
            report["counts"]["issued"]
        assert counters.get("serve.retries", 0) == \
            report["resilience"]["retries_spent"]


class TestDeadlineRetryInterplay:
    """Satellite: retry-budget exhaustion under ``request.error`` with a
    deadline in play.  An attempt that fails *past* the deadline is a
    deadline miss — it must classify as DEADLINE_EXCEEDED, never burn
    retry budget, and never be re-queued."""

    def config(self, **overrides):
        base = dict(workload="basic", clients=2, queries=6, tenants=2,
                    cores=2, mpl=2, quantum_rows=8, seed=42, tier="10MB",
                    mode="closed", retry_jitter=0.0,
                    faults=FaultPlan(request_error_p=1.0))
        base.update(overrides)
        return ServeConfig(**base)

    def test_failed_attempt_past_deadline_is_deadline_exceeded(self):
        # Every attempt fails, and by the time the first failure lands
        # the (tiny) deadline has always passed: no request may classify
        # as FAILED, and the generous retry budget must stay untouched.
        report = run_serve(self.config(
            retries=4, retry_budget=64, deadline_s=1e-9))
        counts = report["counts"]
        assert counts["deadline_exceeded"] == counts["issued"]
        assert counts["failed"] == 0
        assert counts["completed"] == 0
        assert report["resilience"]["retries_spent"] == 0

    def test_budget_exhausted_at_deadline_boundary(self):
        # Budget already exhausted (0) when the deadline passes: the
        # deadline classification must win over budget-exhaustion
        # (DEADLINE_EXCEEDED, not FAILED).
        report = run_serve(self.config(
            retries=4, retry_budget=0, deadline_s=1e-9))
        counts = report["counts"]
        assert counts["deadline_exceeded"] == counts["issued"]
        assert counts["failed"] == 0

    def test_budget_exhaustion_without_deadline_is_failed(self):
        # Contrast: same failing load, no deadline — budget exhaustion
        # classifies as FAILED and spends exactly the budget.
        report = run_serve(self.config(retries=4, retry_budget=3))
        counts = report["counts"]
        assert counts["failed"] == counts["issued"]
        assert counts["deadline_exceeded"] == 0
        assert report["resilience"]["retries_spent"] == 3

    def test_wasted_energy_reason_is_deadline(self):
        report = run_serve(self.config(
            retries=4, retry_budget=64, deadline_s=1e-9))
        energy = report["energy"]
        assert energy["useful_energy_j"] + energy["wasted_energy_j"] \
            == energy["active_energy_j"]
        assert "deadline_exceeded" in energy["wasted_by_reason_j"]
        assert "failed" not in energy["wasted_by_reason_j"]


class TestFailedAttemptRowAccounting:
    """Regression: rows accrued by a fault-killed attempt must not stick
    to the request — the client never received them.  Faults can surface
    from *inside* the work iterator (disk faults between row pulls), so
    the quantum may have already counted rows when the attempt dies."""

    def _server_with_faulty_job(self):
        from repro import Machine, tiny_intel
        from repro.db import Database, postgres_like
        from repro.serve.loop import QueryServer
        from repro.serve.admission import AdmissionController
        from repro.serve.policies import FifoPolicy
        from repro.sim.cores import CoreSet

        machine = Machine(tiny_intel())
        db = Database(machine, postgres_like(), name="rows")

        def faulty(slot):
            def gen():
                yield from range(3)
                raise FaultError("injected mid-quantum")
            return gen()

        class _Driver:
            tenants = 1

            def on_terminal(self, client, now):
                return None

        core_set = CoreSet(machine, 1)
        server = QueryServer(
            db, core_set, AdmissionController(machine.metrics),
            FifoPolicy(), _Driver(), mpl=1, quantum_rows=8,
        )
        job = JobTemplate(name="faulty", tables=("t",), cost=1.0,
                          make=faulty)
        return server, job

    def test_mid_quantum_fault_rolls_back_rows(self):
        from repro.serve.request import FAILED

        server, job = self._server_with_faulty_job()
        req = Request(request_id=0, tenant="tenant0", client=0, job=job,
                      arrival_s=0.0)
        server.requests.append(req)
        server.admission.offer(req, 0.0)
        server.admission.take(req, 0.0)
        core = server.core_set.cores[0]
        req.slot = server._free_slots[core.index].pop(0)
        core.run_list.append(req)
        server._run_quantum(core)
        assert req.state == FAILED
        # The attempt pulled 3 rows before dying; none were delivered.
        assert req.rows == 0

    def test_report_rows_equal_delivered_rows_under_faults(self):
        plain = run_serve(small_config())
        assert plain["counts"]["completed"] == plain["counts"]["issued"]
        chaos = run_serve(small_config(
            faults=FaultPlan(request_error_p=0.05), retries=8,
            retry_jitter=0.0,
        ))
        assert chaos["resilience"]["faults_injected"].get(
            "request.error", 0) > 0
        # With every request eventually completing, the rows delivered
        # must match the fault-free run exactly: failed attempts leave
        # no trace in the row totals.
        assert chaos["counts"]["completed"] == chaos["counts"]["issued"]
        for tenant, stats in plain["tenants"].items():
            assert chaos["tenants"][tenant]["rows"] == stats["rows"]
