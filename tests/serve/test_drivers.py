"""Unit tests of the open- and closed-loop workload drivers."""

import pytest

from repro.errors import ConfigError
from repro.serve.drivers import (
    ClosedLoopDriver,
    OpenLoopDriver,
    make_driver,
    split_queries,
)
from repro.serve.request import JobTemplate
from repro.serve.workload import QueryMix


def mix(n_jobs=2):
    jobs = [JobTemplate(name=f"j{i}", tables=(f"t{i}",), cost=float(i + 1),
                        make=lambda slot: iter(()))
            for i in range(n_jobs)]
    return QueryMix("test", [jobs])


class TestSplitQueries:
    def test_even(self):
        assert split_queries(8, 4) == [2, 2, 2, 2]

    def test_remainder_goes_to_early_clients(self):
        assert split_queries(7, 3) == [3, 2, 2]

    def test_fewer_queries_than_clients(self):
        assert split_queries(2, 4) == [1, 1, 0, 0]


class TestOpenLoop:
    def test_arrivals_deterministic(self):
        a = OpenLoopDriver(mix(), 3, 9, seed=5, tenants=2, rate_qps=100.0)
        b = OpenLoopDriver(mix(), 3, 9, seed=5, tenants=2, rate_qps=100.0)
        arr_a = [(t, c, j.name) for t, c, j in a.initial_arrivals()]
        arr_b = [(t, c, j.name) for t, c, j in b.initial_arrivals()]
        assert arr_a == arr_b

    def test_seed_changes_arrivals(self):
        a = OpenLoopDriver(mix(), 3, 9, seed=5, tenants=2, rate_qps=100.0)
        b = OpenLoopDriver(mix(), 3, 9, seed=6, tenants=2, rate_qps=100.0)
        assert ([t for t, _, _ in a.initial_arrivals()]
                != [t for t, _, _ in b.initial_arrivals()])

    def test_all_queries_issued_sorted(self):
        driver = OpenLoopDriver(mix(), 4, 10, seed=1, tenants=2,
                                rate_qps=50.0)
        arrivals = driver.initial_arrivals()
        assert len(arrivals) == 10
        times = [t for t, _, _ in arrivals]
        assert times == sorted(times)

    def test_no_reissue_on_terminal(self):
        driver = OpenLoopDriver(mix(), 2, 4, seed=1, tenants=2,
                                rate_qps=50.0)
        driver.initial_arrivals()
        assert driver.on_terminal(0, 1.0) is None

    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigError):
            OpenLoopDriver(mix(), 2, 4, seed=1, tenants=2, rate_qps=0.0)


class TestClosedLoop:
    def test_one_initial_arrival_per_client(self):
        driver = ClosedLoopDriver(mix(), 3, 9, seed=2, tenants=2,
                                  think_s=0.0)
        arrivals = driver.initial_arrivals()
        assert [c for _, c, _ in arrivals] == [0, 1, 2]
        assert all(t == 0.0 for t, _, _ in arrivals)

    def test_reissue_until_budget_exhausted(self):
        driver = ClosedLoopDriver(mix(), 1, 3, seed=2, tenants=1,
                                  think_s=0.0)
        driver.initial_arrivals()  # issue 1
        nxt = driver.on_terminal(0, 1.0)  # issue 2
        assert nxt is not None and nxt[0] == 1.0
        assert driver.on_terminal(0, 2.0) is not None  # issue 3
        assert driver.on_terminal(0, 3.0) is None  # budget spent

    def test_think_time_is_seeded(self):
        a = ClosedLoopDriver(mix(), 1, 5, seed=3, tenants=1, think_s=0.5)
        b = ClosedLoopDriver(mix(), 1, 5, seed=3, tenants=1, think_s=0.5)
        a.initial_arrivals(), b.initial_arrivals()
        t_a, job_a = a.on_terminal(0, 0.0)
        t_b, job_b = b.on_terminal(0, 0.0)
        assert t_a == t_b and job_a.name == job_b.name
        assert a.on_terminal(0, 0.0)[0] > 0.0

    def test_jobs_cycle(self):
        driver = ClosedLoopDriver(mix(2), 1, 4, seed=2, tenants=1,
                                  think_s=0.0)
        (_, _, first), = driver.initial_arrivals()
        _, second = driver.on_terminal(0, 0.0)
        _, third = driver.on_terminal(0, 0.0)
        assert [first.name, second.name, third.name] == ["j0", "j1", "j0"]


class TestTenants:
    def test_round_robin_assignment(self):
        driver = ClosedLoopDriver(mix(), 4, 8, seed=1, tenants=2,
                                  think_s=0.0)
        assert [driver.tenant_of(i) for i in range(4)] == [
            "tenant0", "tenant1", "tenant0", "tenant1"
        ]


class TestFactory:
    def test_modes(self):
        kwargs = dict(n_clients=2, n_queries=4, seed=1, tenants=2,
                      rate_qps=10.0, think_s=0.0)
        assert make_driver("open", mix(), **kwargs).mode == "open"
        assert make_driver("closed", mix(), **kwargs).mode == "closed"
        with pytest.raises(ConfigError):
            make_driver("batch", mix(), **kwargs)
