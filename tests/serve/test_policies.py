"""Unit tests of scheduling policies and DVFS serving modes."""

import pytest

from repro import Machine, tiny_intel
from repro.errors import ConfigError
from repro.serve.policies import (
    FifoPolicy,
    LocalityPolicy,
    SjfPolicy,
    apply_dvfs,
    make_policy,
)
from repro.serve.request import JobTemplate, Request


def req(i, cost=1.0, tables=("t",), arrival=None):
    job = JobTemplate(name=f"j{i}", tables=tuple(tables), cost=cost,
                      make=lambda slot: iter(()))
    return Request(request_id=i, tenant="tenant0", client=i, job=job,
                   arrival_s=float(i) if arrival is None else arrival)


class TestFifo:
    def test_picks_head(self):
        queue = [req(0), req(1), req(2)]
        assert FifoPolicy().select(queue, frozenset()) is queue[0]

    def test_empty_queue(self):
        assert FifoPolicy().select([], frozenset()) is None


class TestSjf:
    def test_picks_cheapest(self):
        queue = [req(0, cost=9.0), req(1, cost=2.0), req(2, cost=5.0)]
        assert SjfPolicy().select(queue, frozenset()) is queue[1]

    def test_ties_break_on_arrival(self):
        queue = [req(0, cost=3.0), req(1, cost=3.0)]
        assert SjfPolicy().select(queue, frozenset()) is queue[0]


class TestLocality:
    def test_prefers_hot_table_overlap(self):
        queue = [req(0, tables=("orders",)), req(1, tables=("lineitem",))]
        policy = LocalityPolicy()
        chosen = policy.select(queue, frozenset({"lineitem"}))
        assert chosen is queue[1]

    def test_falls_back_to_head_without_overlap(self):
        queue = [req(0, tables=("orders",)), req(1, tables=("part",))]
        policy = LocalityPolicy()
        assert policy.select(queue, frozenset({"lineitem"})) is queue[0]

    def test_starvation_guard_forces_head(self):
        policy = LocalityPolicy(max_bypass=2)
        head = req(0, tables=("orders",))
        hot = frozenset({"lineitem"})
        queue = [head, req(1, tables=("lineitem",)), req(2, tables=("lineitem",)),
                 req(3, tables=("lineitem",))]
        assert policy.select(queue, hot) is queue[1]
        queue.pop(1)
        assert policy.select(queue, hot) is queue[1]
        queue.pop(1)
        # Two bypasses used up: the head must be served now.
        assert policy.select(queue, hot) is head

    def test_invalid_guard(self):
        with pytest.raises(ConfigError):
            LocalityPolicy(max_bypass=-1)


class TestFactory:
    def test_known_policies(self):
        assert make_policy("fifo").name == "fifo"
        assert make_policy("sjf").name == "sjf"
        assert make_policy("locality").name == "locality"

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            make_policy("lifo")


class TestApplyDvfs:
    def test_race_pins_highest(self):
        machine = Machine(tiny_intel())
        apply_dvfs(machine, "race")
        assert machine.pstate == machine.config.pstates.highest
        assert not machine.eist_enabled

    def test_pace_pins_middle(self):
        machine = Machine(tiny_intel())
        apply_dvfs(machine, "pace")
        table = machine.config.pstates
        assert table.lowest < machine.pstate < table.highest

    def test_eist_enables_governor(self):
        machine = Machine(tiny_intel())
        apply_dvfs(machine, "eist")
        assert machine.eist_enabled

    def test_unknown_mode(self):
        with pytest.raises(ConfigError):
            apply_dvfs(Machine(tiny_intel()), "turbo")
