"""Unit tests of the serve query mixes."""

import pytest

from repro.errors import ConfigError
from repro.serve.workload import (
    MIXES,
    THRASH_TABLES,
    TPCH_SERVE_QUERIES,
    build_mix,
)
from repro.workloads.tpch.queries import QUERIES


class TestBuildMix:
    def test_unknown_mix(self, postgres_db):
        with pytest.raises(ConfigError):
            build_mix("olap", postgres_db, 2, seed=1)

    def test_basic_jobs_have_costs_and_tables(self, postgres_db):
        mix = build_mix("basic", postgres_db, 2, seed=1)
        for job in mix.jobs_for_client(0):
            assert job.cost > 0
            assert job.tables

    def test_clients_phase_shifted(self, postgres_db):
        mix = build_mix("basic", postgres_db, 3, seed=1)
        first = [mix.jobs_for_client(i)[0].name for i in range(3)]
        assert len(set(first)) == 3

    def test_tpch_subset_is_plan_backed(self):
        for number in TPCH_SERVE_QUERIES:
            assert QUERIES[number].plan is not None

    def test_tpch_mix_runs_a_job(self, postgres_db):
        mix = build_mix("tpch", postgres_db, 1, seed=1)
        job = mix.jobs_for_client(0)[0]
        rows = list(job.make(0))
        assert rows

    def test_thrash_clients_rotate_tables(self, postgres_db):
        mix = build_mix("thrash", postgres_db, 6, seed=1)
        tables = [mix.jobs_for_client(i)[0].tables for i in range(6)]
        assert tables[0] != tables[1] != tables[2]
        assert tables[0] == tables[3]  # cycle repeats
        names = {t for (name, _col) in THRASH_TABLES for t in [name]}
        assert {t for tup in tables for t in tup} <= names

    def test_kv_mix_is_seeded_and_deterministic(self, machine):
        from repro.db import Database, postgres_like

        db_a = Database(machine, postgres_like(), name="a")
        mix_a = build_mix("kv", db_a, 2, seed=9)
        job = mix_a.jobs_for_client(0)[0]
        assert job.tables == ("kv",)
        ops = list(job.make(0))
        assert len(ops) == 64

    def test_mix_names(self):
        assert set(MIXES) == {"basic", "tpch", "thrash", "kv", "points"}
