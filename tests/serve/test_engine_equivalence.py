"""Cross-engine equivalence of the serve core.

The event-driven serve loop batches whole quanta through the batched
executor; the contract is that nothing observable moves: per-tenant
joules, the useful/wasted split, fault sites hit, retry/deadline/
breaker decisions, latency percentiles, and counters are bit-identical
between ``exec_mode="reference"`` and ``exec_mode="batched"``.  These
tests serialise whole serve reports (the only differing config field,
``exec_mode``, dropped) and compare bytes across the policy, fault,
and driver matrix.

Also here: event-ordering determinism (equal-timestamp arrivals are
tie-broken by issue sequence, so repeated runs are byte-identical) and
the batched-quantum protocol (``run_rows`` versus per-row ``__next__``
charge identical micro-ops).
"""

import json

import pytest

from repro import Machine, intel_i7_4790
from repro.faults import FaultPlan
from repro.serve import ServeConfig, run_serve
from repro.serve.workload import (
    POINT_RING_LINES,
    _PointRun,
)


def _config(exec_mode: str, **overrides) -> ServeConfig:
    base = dict(workload="basic", clients=4, queries=12, tenants=2,
                cores=2, mpl=2, quantum_rows=8, seed=42, tier="10MB",
                mode="closed", exec_mode=exec_mode)
    base.update(overrides)
    return ServeConfig(**base)


def _report_bytes(exec_mode: str, **overrides) -> str:
    report = run_serve(_config(exec_mode, **overrides))
    del report["config"]["exec_mode"]
    return json.dumps(report, sort_keys=True)


def _assert_cross_mode_identical(**overrides) -> None:
    assert (_report_bytes("reference", **overrides)
            == _report_bytes("batched", **overrides))


class TestCrossEngineReports:
    @pytest.mark.parametrize("policy", ["fifo", "sjf", "locality"])
    def test_policies(self, policy):
        # Closed-loop initial arrivals all land at t=0: every dispatch
        # decision rides on tie order, so a policy-selection divergence
        # between engines would flip the whole report.
        _assert_cross_mode_identical(policy=policy)

    def test_locality_on_thrash_mix(self):
        _assert_cross_mode_identical(workload="thrash", policy="locality",
                                     clients=3, queries=6)

    def test_faults_retries_and_breaker(self):
        _assert_cross_mode_identical(
            faults=FaultPlan(request_error_p=0.2, disk_error_p=0.05),
            retries=2, breaker_threshold=0.6, breaker_window=8,
        )

    def test_deadlines_shed_identically(self):
        _assert_cross_mode_identical(
            deadline_s=0.0005, faults=FaultPlan(request_error_p=0.1),
            retries=1,
        )

    def test_open_loop_points_with_sampler(self):
        _assert_cross_mode_identical(
            workload="points", mode="open", rate_qps=2000.0,
            clients=6, queries=30, telemetry="sampler",
        )

    def test_kv_mix(self):
        _assert_cross_mode_identical(workload="kv", clients=3, queries=9)


class TestEventOrderingDeterminism:
    def test_closed_loop_runs_are_byte_identical(self):
        # All clients arrive at t=0.0 and every quantum boundary is an
        # exact float: the heap tie-break (arrival seq, core index)
        # must be total, never falling back to unstable comparisons.
        assert (_report_bytes("batched")
                == _report_bytes("batched"))

    def test_open_loop_runs_are_byte_identical(self):
        kwargs = dict(workload="points", mode="open", rate_qps=5000.0,
                      clients=8, queries=64)
        assert (_report_bytes("batched", **kwargs)
                == _report_bytes("batched", **kwargs))


class TestRunRowsProtocol:
    """``run_rows(n)`` must charge exactly what n ``__next__`` calls do."""

    @staticmethod
    def _counters(exec_mode, drive):
        machine = Machine(intel_i7_4790(scale=16), exec_mode=exec_mode)
        ring = machine.address_space.alloc_lines(POINT_RING_LINES, "ring")
        state = machine.address_space.alloc(256, label="state")
        run = _PointRun(machine, ring, state)
        drive(run)
        machine.settle()
        return machine.cpu.counters.as_dict()

    @staticmethod
    def _bulk(run, quantum=16):
        while run.run_rows(quantum):
            pass

    @staticmethod
    def _per_row(run):
        for _ in run:
            pass

    @pytest.mark.parametrize("exec_mode", ["reference", "batched"])
    def test_bulk_matches_per_row(self, exec_mode):
        assert (self._counters(exec_mode, self._bulk)
                == self._counters(exec_mode, self._per_row))

    def test_odd_quantum_split(self):
        # 48 rows in quanta of 7 exercises the short final quantum.
        assert (self._counters("batched", lambda r: self._bulk(r, 7))
                == self._counters("batched", self._per_row))

    def test_run_rows_reports_exhaustion(self):
        machine = Machine(intel_i7_4790(scale=16), exec_mode="batched")
        ring = machine.address_space.alloc_lines(POINT_RING_LINES, "ring")
        state = machine.address_space.alloc(256, label="state")
        run = _PointRun(machine, ring, state)
        done = run.run_rows(1000)
        assert done < 1000  # fewer than asked == request exhausted
        assert run.run_rows(1) == 0


class TestSqlMixRunRowsVsNext:
    """The serve loop engages ``run_rows`` whenever the work iterator
    provides it; hiding the method forces the legacy per-row ``next``
    quantum.  Both paths must produce byte-identical whole reports on
    the SQL mixes, across the policy x fault x deadline grid."""

    GRID = [
        dict(policy="fifo"),
        dict(policy="sjf"),
        dict(policy="locality"),
        dict(policy="fifo",
             faults=FaultPlan(request_error_p=0.15), retries=2),
        dict(policy="sjf",
             faults=FaultPlan(request_error_p=0.15), retries=2),
        dict(policy="locality", deadline_s=0.0008),
        dict(policy="fifo", deadline_s=0.0008,
             faults=FaultPlan(request_error_p=0.1), retries=1),
        dict(policy="sjf", deadline_s=0.0008,
             faults=FaultPlan(request_error_p=0.1), retries=1),
        dict(policy="locality",
             faults=FaultPlan(request_error_p=0.15), retries=2,
             deadline_s=0.0008),
    ]

    @staticmethod
    def _next_only_report(monkeypatch, exec_mode, **overrides) -> str:
        from repro.db.engine import SessionRows

        with monkeypatch.context() as m:
            m.delattr(SessionRows, "run_rows")
            report = run_serve(_config(exec_mode, **overrides))
        report.pop("config")
        return json.dumps(report, sort_keys=True)

    @staticmethod
    def _run_rows_report(exec_mode, **overrides) -> str:
        report = run_serve(_config(exec_mode, **overrides))
        report.pop("config")
        return json.dumps(report, sort_keys=True)

    @pytest.mark.parametrize("cell", GRID,
                             ids=lambda c: "-".join(
                                 f"{k}" for k in sorted(c)))
    def test_grid_cell_byte_identical(self, monkeypatch, cell):
        kwargs = dict(clients=3, queries=8, **cell)
        assert (self._run_rows_report("batched", **kwargs)
                == self._next_only_report(monkeypatch, "batched", **kwargs))

    def test_reference_engine_cell(self, monkeypatch):
        kwargs = dict(policy="sjf",
                      faults=FaultPlan(request_error_p=0.15), retries=2,
                      clients=3, queries=8)
        assert (self._run_rows_report("reference", **kwargs)
                == self._next_only_report(monkeypatch, "reference",
                                          **kwargs))


class TestSuspendedSessionCounters:
    """A plan-backed session suspended and resumed across quantum
    boundaries (small ``run_rows`` quanta) must charge exactly the
    micro-ops of a straight drain — in both engines, with identical
    counters across engines — including suspension points that land
    mid-aggregate and mid-sort output."""

    AGG_SQL = ("SELECT l_orderkey, SUM(l_quantity), COUNT(*) "
               "FROM lineitem GROUP BY l_orderkey")
    SORT_SQL = ("SELECT l_orderkey, l_extendedprice FROM lineitem "
                "WHERE l_quantity < 30 ORDER BY l_extendedprice")

    @staticmethod
    def _drive(exec_mode: str, sql_text: str, quantum: int | None):
        from repro import tiny_intel
        from repro.db import Database, postgres_like
        from repro.workloads.tpch import TpchData, load_into

        machine = Machine(tiny_intel(), exec_mode=exec_mode)
        db = Database(machine, postgres_like(), name="chop")
        load_into(db, TpchData("10MB"))
        it = db.execute_iter(db.sql_plan(sql_text), slot=0)
        boundaries = 0
        if quantum is None:
            it.fetch_all()
        else:
            while it.run_rows(quantum) == quantum:
                boundaries += 1
        machine.settle()
        return machine.cpu.counters.as_dict(), boundaries

    @pytest.mark.parametrize("sql_text", [AGG_SQL, SORT_SQL],
                             ids=["mid-aggregate", "mid-sort"])
    def test_chopped_counters_identical_across_engines(self, sql_text):
        ref, ref_b = self._drive("reference", sql_text, quantum=5)
        bat, bat_b = self._drive("batched", sql_text, quantum=5)
        assert ref_b == bat_b
        assert ref_b > 3  # >= 3 suspend/resume boundaries mid-stream
        assert ref == bat

    @pytest.mark.parametrize("sql_text", [AGG_SQL, SORT_SQL],
                             ids=["mid-aggregate", "mid-sort"])
    def test_chopped_matches_straight_drain(self, sql_text):
        chopped, boundaries = self._drive("batched", sql_text, quantum=5)
        straight, _ = self._drive("batched", sql_text, quantum=None)
        assert boundaries > 3
        assert chopped == straight
