"""End-to-end tests of the serving loop: determinism, attribution,
admission pressure, and multiprogramming."""

import json

import pytest

from repro.serve import ServeConfig, run_serve


def small_config(**overrides) -> ServeConfig:
    base = dict(
        workload="basic",
        policy="fifo",
        clients=4,
        queries=8,
        tenants=2,
        cores=2,
        mpl=2,
        quantum_rows=8,
        seed=42,
        tier="10MB",
        mode="closed",
        think_s=0.0,
    )
    base.update(overrides)
    return ServeConfig(**base)


class TestDeterminism:
    def test_same_seed_identical_json(self):
        """Hard requirement: N>=4 clients, two runs, identical reports."""
        config = small_config(clients=4)
        a = json.dumps(run_serve(config), sort_keys=True)
        b = json.dumps(run_serve(small_config(clients=4)), sort_keys=True)
        assert a == b

    def test_seed_changes_open_loop_run(self):
        a = run_serve(small_config(mode="open", rate_qps=500.0, seed=1))
        b = run_serve(small_config(mode="open", rate_qps=500.0, seed=2))
        assert (a["latency_s"]["mean_s"] != b["latency_s"]["mean_s"]
                or a["energy"]["total_active_j"]
                != b["energy"]["total_active_j"])


class TestEnergyAttribution:
    def test_tenant_energies_sum_to_total(self):
        report = run_serve(small_config())
        energy = report["energy"]
        total = energy["total_active_j"]
        regrouped = (energy["system_active_j"]
                     + sum(energy["tenant_active_j"].values()))
        assert regrouped == pytest.approx(total, rel=1e-12, abs=1e-15)
        assert energy["check_sum_j"] == pytest.approx(total, rel=1e-12,
                                                      abs=1e-15)

    def test_every_tenant_credited(self):
        report = run_serve(small_config())
        assert set(report["energy"]["tenant_active_j"]) == {
            "tenant0", "tenant1"
        }
        for joules in report["energy"]["tenant_active_j"].values():
            assert joules > 0

    def test_idle_gaps_bill_the_system_not_tenants(self):
        # Long think times leave the machine idle between queries; that
        # idle energy must not be attributed to any tenant.
        report = run_serve(small_config(clients=2, queries=4,
                                        think_s=0.05))
        assert report["clock"]["idle_s"] > 0
        total_tenant = sum(report["energy"]["tenant_active_j"].values())
        assert total_tenant < report["energy"]["total_active_j"] * 1.5


class TestCompletion:
    def test_all_queries_reach_a_terminal_state(self):
        report = run_serve(small_config())
        counts = report["counts"]
        assert counts["issued"] == 8
        assert (counts["completed"] + counts["rejected_queue"]
                + counts["rejected_quota"]
                + counts["shed_timeout"]) == counts["issued"]
        assert counts["completed"] == 8

    def test_latency_percentiles_ordered(self):
        lat = run_serve(small_config())["latency_s"]
        assert lat["p50_s"] <= lat["p95_s"] <= lat["p99_s"]
        assert lat["n"] == 8


class TestAdmissionPressure:
    def test_queue_bound_rejects(self):
        report = run_serve(small_config(
            mode="open", rate_qps=100000.0, queries=12, max_queue=2,
            cores=1, mpl=1,
        ))
        assert report["counts"]["rejected_queue"] > 0

    def test_tenant_quota_rejects(self):
        report = run_serve(small_config(
            mode="open", rate_qps=100000.0, queries=12, tenant_quota=1,
            cores=1, mpl=1,
        ))
        assert report["counts"]["rejected_quota"] > 0

    def test_timeout_sheds(self):
        report = run_serve(small_config(
            mode="open", rate_qps=100000.0, queries=12,
            queue_timeout_s=1e-6, cores=1, mpl=1,
        ))
        assert report["counts"]["shed_timeout"] > 0
        # Shed or rejected requests never execute, but they are still
        # accounted as terminal.
        counts = report["counts"]
        assert (counts["completed"] + counts["rejected_queue"]
                + counts["rejected_quota"]
                + counts["shed_timeout"]) == counts["issued"]


class TestMultiprogramming:
    def test_queries_are_time_sliced(self):
        report = run_serve(small_config(workload="basic", queries=6,
                                        quantum_rows=8))
        # With an 8-row quantum, the scan-shaped basic operations need
        # several quanta, so switches outnumber completed queries.
        assert (report["clock"]["context_switches"]
                > report["counts"]["completed"])

    def test_dvfs_modes_change_energy(self):
        race = run_serve(small_config(dvfs="race"))
        pace = run_serve(small_config(dvfs="pace"))
        assert (race["energy"]["total_active_j"]
                != pace["energy"]["total_active_j"])
        assert race["clock"]["busy_s"] < pace["clock"]["busy_s"]
