"""Tests of the root-seed derivation helpers."""

import pytest

from repro.errors import ConfigError
from repro.seeding import derive_seed, require_seed, seeded_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")

    def test_path_separates_streams(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")
        assert derive_seed(7, "a", "b") != derive_seed(7, "ab")

    def test_root_separates_streams(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(0, "x") < 2**64


class TestRequireSeed:
    def test_passes_through(self):
        assert require_seed(5, "component") == 5
        assert require_seed(0, "component") == 0

    def test_fails_loudly_on_none(self):
        with pytest.raises(ConfigError, match="component"):
            require_seed(None, "component")


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = seeded_rng(11, "x")
        b = seeded_rng(11, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_requires_seed(self):
        with pytest.raises(ConfigError):
            seeded_rng(None, "arrivals")
