"""Unit tests for the expression layer (values + micro-op accounting)."""

import pytest

from repro.db import exprs as E
from repro.db.types import Column, FLOAT, INT, STR, Schema
from repro.errors import PlanError


SCHEMA = Schema([
    Column("a", INT), Column("b", FLOAT), Column("s", STR, 16),
    Column("d", INT),
])
ROW = (7, 2.5, "hello world", 730000)


def run(expr, machine, row=ROW):
    return expr.compile(SCHEMA, machine)(row)


class TestBasics:
    def test_col(self, machine):
        assert run(E.Col("a"), machine) == 7

    def test_unknown_col(self, machine):
        with pytest.raises(Exception):
            E.Col("zz").compile(SCHEMA, machine)

    def test_const(self, machine):
        assert run(E.Const(42), machine) == 42

    def test_cmp_operators(self, machine):
        assert run(E.Col("a") < E.Const(10), machine)
        assert run(E.Col("a") >= E.Const(7), machine)
        assert run(E.Col("a").eq(7), machine)
        assert run(E.Col("a").ne(8), machine)
        assert not run(E.Col("a") > E.Const(10), machine)

    def test_cmp_none_is_false(self, machine):
        schema = Schema([Column("x", INT)])
        expr = E.Cmp("<", E.Col("x"), E.Const(5))
        assert expr.compile(schema, machine)((None,)) is False

    def test_arith(self, machine):
        assert run(E.Col("a") + E.Const(3), machine) == 10
        assert run(E.Col("a") - E.Const(2), machine) == 5
        assert run(E.Col("b") * E.Const(2), machine) == 5.0
        assert run(E.Col("a") / E.Const(2), machine) == 3.5

    def test_arith_none_propagates(self, machine):
        schema = Schema([Column("x", FLOAT)])
        expr = E.Arith("*", E.Col("x"), E.Const(2))
        assert expr.compile(schema, machine)((None,)) is None

    def test_invalid_ops_rejected(self):
        with pytest.raises(PlanError):
            E.Cmp("~", E.Const(1), E.Const(2))
        with pytest.raises(PlanError):
            E.Arith("%", E.Const(1), E.Const(2))


class TestBoolean:
    def test_and_short_circuit(self, machine):
        expr = E.And(E.Col("a") > E.Const(100), E.Col("a") / E.Const(0))
        assert run(expr, machine) is False  # second arm never evaluated

    def test_or(self, machine):
        assert run(E.Or(E.Col("a").eq(0), E.Col("a").eq(7)), machine)

    def test_not(self, machine):
        assert run(E.Not(E.Col("a").eq(0)), machine)

    def test_between(self, machine):
        assert run(E.Between(E.Col("a"), 5, 9), machine)
        assert run(E.Between(E.Col("a"), 7, 7), machine)
        assert not run(E.Between(E.Col("a"), 8, 9), machine)

    def test_in_list(self, machine):
        assert run(E.InList(E.Col("a"), (1, 7, 9)), machine)
        assert not run(E.InList(E.Col("a"), (1, 2)), machine)


class TestStrings:
    def test_prefix(self, machine):
        assert run(E.StrPrefix(E.Col("s"), "hello"), machine)
        assert not run(E.StrPrefix(E.Col("s"), "world"), machine)

    def test_suffix(self, machine):
        assert run(E.StrSuffix(E.Col("s"), "world"), machine)

    def test_contains(self, machine):
        assert run(E.StrContains(E.Col("s"), "lo wo"), machine)
        assert not run(E.StrContains(E.Col("s"), "xyz"), machine)

    def test_slice(self, machine):
        assert run(E.StrSlice(E.Col("s"), 0, 5), machine) == "hello"


class TestMisc:
    def test_extract_year(self, machine):
        from datetime import date
        value = date(1994, 6, 1).toordinal()
        expr = E.ExtractYear(E.Col("a"))
        schema = Schema([Column("a", INT)])
        assert expr.compile(schema, machine)((value,)) == 1994

    def test_case_when(self, machine):
        expr = E.CaseWhen(E.Col("a") > E.Const(5), E.Const("big"),
                          E.Const("small"))
        assert run(expr, machine) == "big"

    def test_tuple_of(self, machine):
        expr = E.TupleOf(E.Col("a"), E.Col("b"))
        assert run(expr, machine) == (7, 2.5)


class TestAccounting:
    def test_cmp_charges_ops(self, machine):
        machine.reset_measurements()
        run(E.Col("a") < E.Const(3), machine)
        counters = machine.pmu.counters
        assert counters.n_cmp == 1 and counters.n_branch == 1

    def test_arith_charges_mul(self, machine):
        machine.reset_measurements()
        run(E.Col("b") * E.Const(2), machine)
        assert machine.pmu.counters.n_mul == 1

    def test_string_cost_scales_with_width(self, machine):
        machine.reset_measurements()
        run(E.StrPrefix(E.Col("s"), "h" * 20), machine)
        wide = machine.pmu.counters.n_cmp
        machine.reset_measurements()
        run(E.StrPrefix(E.Col("s"), "h"), machine)
        narrow = machine.pmu.counters.n_cmp
        assert wide > narrow

    def test_col_is_free(self, machine):
        machine.reset_measurements()
        run(E.Col("a"), machine)
        assert machine.pmu.counters.instructions == 0


class TestHelpers:
    def test_columns_used(self):
        expr = E.And(E.Col("a") < E.Col("b"),
                     E.StrPrefix(E.Col("s"), "x"),
                     E.CaseWhen(E.Col("d").eq(1), E.Const(1), E.Col("a")))
        assert E.columns_used(expr) == {"a", "b", "s", "d"}

    def test_conjuncts_flatten(self):
        expr = E.And(E.Col("a").eq(1), E.And(E.Col("b").eq(2), E.Col("d").eq(3)))
        assert len(E.conjuncts(expr)) == 3

    def test_conjuncts_none(self):
        assert E.conjuncts(None) == []

    def test_and_all_roundtrip(self):
        parts = [E.Col("a").eq(1), E.Col("b").eq(2)]
        rebuilt = E.and_all(parts)
        assert len(E.conjuncts(rebuilt)) == 2

    def test_and_all_single(self):
        single = E.Col("a").eq(1)
        assert E.and_all([single]) is single

    def test_and_all_empty(self):
        assert E.and_all([]) is None
