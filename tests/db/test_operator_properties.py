"""Property-based operator correctness against plain-Python semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Machine, tiny_intel
from repro.db import Database, postgres_like, sqlite_like
from repro.db.exprs import Col
from repro.db.operators import AggSpec
from repro.db.planner import Aggregate, Join, Scan, Sort
from repro.db.types import Column, FLOAT, INT, Schema

SCHEMA = Schema([Column("k", INT), Column("g", INT), Column("v", FLOAT)])

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=5),
        st.floats(min_value=-100, max_value=100,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1, max_size=80,
)


def load(rows, profile_factory):
    profile = profile_factory() if callable(profile_factory) else profile_factory
    db = Database(Machine(tiny_intel()), profile, name="prop")
    # Unique surrogate PK so clustered storage accepts duplicates of k.
    widened = Schema([Column("pk", INT)] + list(SCHEMA.columns))
    db.create_table("t", widened,
                    [(i,) + tuple(r) for i, r in enumerate(rows)],
                    primary_key="pk")
    return db


class TestSortProperty:
    @settings(max_examples=25, deadline=None)
    @given(rows_strategy)
    def test_sort_matches_sorted(self, rows):
        db = load(rows, sqlite_like)
        got = db.execute(Sort(Scan("t"), ((Col("v"), False), (Col("pk"), False))))
        assert [r[3] for r in got] == [
            v for v, _ in sorted((r[2], i) for i, r in enumerate(rows))
        ]


class TestAggregateProperty:
    @settings(max_examples=25, deadline=None)
    @given(rows_strategy)
    def test_group_sums_match_reference(self, rows):
        db = load(rows, postgres_like)
        got = db.execute(Aggregate(
            Scan("t"), (("g", Col("g")),),
            (AggSpec("n", "count"), AggSpec("s", "sum", Col("v"))),
        ))
        reference = {}
        for _k, g, v in rows:
            slot = reference.setdefault(g, [0, 0.0])
            slot[0] += 1
            slot[1] += v
        assert {r[0]: r[1] for r in got} == {g: n for g, (n, _) in reference.items()}
        for g, n, s in got:
            assert s == pytest.approx(reference[g][1], abs=1e-6)


class TestJoinProperty:
    @settings(max_examples=15, deadline=None)
    @given(rows_strategy, rows_strategy)
    def test_join_cardinality_matches_reference(self, left, right):
        db = load(left, sqlite_like)
        widened = Schema([Column("rpk", INT), Column("rk", INT),
                          Column("rg", INT), Column("rv", FLOAT)])
        db.create_table("u", widened,
                        [(i,) + tuple(r) for i, r in enumerate(right)],
                        primary_key="rpk")
        got = db.execute(Join(Scan("t"), Scan("u"), Col("g"), Col("rg")))
        expected = sum(
            1 for _lk, lg, _lv in left for _rk, rg, _rv in right if lg == rg
        )
        assert len(got) == expected
