"""Correctness tests for the physical operators, checked against plain
Python implementations of the same semantics."""

import random

import pytest

from repro import Machine, tiny_intel
from repro.db import Database, postgres_like
from repro.db.exprs import Col, Const, TupleOf
from repro.db.operators import (
    AggOp,
    AggSpec,
    DistinctOp,
    FilterOp,
    HashJoinOp,
    IndexNLJoinOp,
    LimitOp,
    ProjectOp,
    SeqScanOp,
    SortOp,
)
from repro.db.operators.base import ExecContext, OutputSink, TempArena
from repro.db.types import Column, FLOAT, INT, STR, Schema
from repro.errors import PlanError

LEFT_SCHEMA = Schema([Column("k", INT), Column("x", FLOAT)])
RIGHT_SCHEMA = Schema([Column("rk", INT), Column("label", STR, 8)])


@pytest.fixture
def env():
    """Machine + database with two small loaded tables + exec context."""
    machine = Machine(tiny_intel())
    db = Database(machine, postgres_like(), name="ops")
    rng = random.Random(3)
    # Keys 0..12 repeat, so joins and group-bys have real fan-out.
    left_rows = [(i % 13, round(rng.random() * 100, 2)) for i in range(160)]
    db.create_table("left_t", LEFT_SCHEMA, left_rows, primary_key="k")
    right_rows = [(i, f"lab{i}") for i in range(10)]
    db.create_table("right_t", RIGHT_SCHEMA, right_rows, primary_key="rk")
    ctx = ExecContext(
        machine=machine, profile=db.profile, catalog=db.catalog,
        temp=TempArena(machine, 1 << 20), sink=OutputSink(machine),
        state_region=machine.address_space.alloc(4096, "state"),
        cold_region=machine.address_space.alloc(1 << 15, "cold"),
    )
    return db, ctx, left_rows, right_rows


def rows_of(op, ctx):
    return list(op.rows(ctx))


class TestScanFilterProject:
    def test_seq_scan_all_rows(self, env):
        db, ctx, left_rows, _ = env
        op = SeqScanOp(db.catalog.table("left_t"))
        assert sorted(rows_of(op, ctx)) == sorted(left_rows)

    def test_pushed_predicate(self, env):
        db, ctx, left_rows, _ = env
        op = SeqScanOp(db.catalog.table("left_t"), Col("x") < Const(50))
        assert sorted(rows_of(op, ctx)) == sorted(
            r for r in left_rows if r[1] < 50
        )

    def test_filter_op(self, env):
        db, ctx, left_rows, _ = env
        op = FilterOp(SeqScanOp(db.catalog.table("left_t")),
                      Col("k").eq(5))
        assert all(r[0] == 5 for r in rows_of(op, ctx))

    def test_project(self, env):
        db, ctx, left_rows, _ = env
        op = ProjectOp(SeqScanOp(db.catalog.table("left_t")),
                       [("double_x", Col("x") * Const(2))])
        got = sorted(r[0] for r in rows_of(op, ctx))
        assert got == sorted(r[1] * 2 for r in left_rows)

    def test_project_schema(self, env):
        db, ctx, _, _ = env
        op = ProjectOp(SeqScanOp(db.catalog.table("left_t")),
                       [("k", Col("k")), ("y", Col("x") + Const(1))])
        assert op.schema.names() == ("k", "y")

    def test_empty_projection_rejected(self, env):
        db, _, _, _ = env
        with pytest.raises(PlanError):
            ProjectOp(SeqScanOp(db.catalog.table("left_t")), [])


class TestLimitDistinct:
    def test_limit(self, env):
        db, ctx, _, _ = env
        op = LimitOp(SeqScanOp(db.catalog.table("left_t")), 7)
        assert len(rows_of(op, ctx)) == 7

    def test_limit_zero(self, env):
        db, ctx, _, _ = env
        op = LimitOp(SeqScanOp(db.catalog.table("left_t")), 0)
        assert rows_of(op, ctx) == []

    def test_limit_negative_rejected(self, env):
        db, _, _, _ = env
        with pytest.raises(PlanError):
            LimitOp(SeqScanOp(db.catalog.table("left_t")), -1)

    def test_distinct(self, env):
        db, ctx, left_rows, _ = env
        op = DistinctOp(ProjectOp(SeqScanOp(db.catalog.table("left_t")),
                                  [("k", Col("k"))]))
        got = sorted(r[0] for r in rows_of(op, ctx))
        assert got == sorted({r[0] for r in left_rows})


class TestHashJoin:
    def expected_inner(self, left_rows, right_rows):
        return sorted(
            l + r for l in left_rows for r in right_rows if l[0] == r[0]
        )

    def test_inner(self, env):
        db, ctx, left_rows, right_rows = env
        op = HashJoinOp(SeqScanOp(db.catalog.table("left_t")),
                        SeqScanOp(db.catalog.table("right_t")),
                        Col("k"), Col("rk"))
        assert sorted(rows_of(op, ctx)) == self.expected_inner(
            left_rows, right_rows
        )

    def test_left_outer(self, env):
        db, ctx, left_rows, right_rows = env
        op = HashJoinOp(SeqScanOp(db.catalog.table("left_t")),
                        SeqScanOp(db.catalog.table("right_t")),
                        Col("k"), Col("rk"), kind="left")
        rows = rows_of(op, ctx)
        matched_keys = {r[0] for r in right_rows}
        unmatched = [r for r in rows if r[2] is None]
        assert all(r[0] not in matched_keys for r in unmatched)
        assert len(rows) >= len(left_rows)

    def test_semi(self, env):
        db, ctx, left_rows, right_rows = env
        op = HashJoinOp(SeqScanOp(db.catalog.table("left_t")),
                        SeqScanOp(db.catalog.table("right_t")),
                        Col("k"), Col("rk"), kind="semi")
        keys = {r[0] for r in right_rows}
        assert sorted(rows_of(op, ctx)) == sorted(
            r for r in left_rows if r[0] in keys
        )

    def test_anti(self, env):
        db, ctx, left_rows, right_rows = env
        op = HashJoinOp(SeqScanOp(db.catalog.table("left_t")),
                        SeqScanOp(db.catalog.table("right_t")),
                        Col("k"), Col("rk"), kind="anti")
        keys = {r[0] for r in right_rows}
        assert sorted(rows_of(op, ctx)) == sorted(
            r for r in left_rows if r[0] not in keys
        )

    def test_tuple_keys(self, env):
        db, ctx, left_rows, right_rows = env
        op = HashJoinOp(SeqScanOp(db.catalog.table("left_t")),
                        SeqScanOp(db.catalog.table("right_t")),
                        TupleOf(Col("k"), Col("k")),
                        TupleOf(Col("rk"), Col("rk")))
        assert sorted(rows_of(op, ctx)) == self.expected_inner(
            left_rows, right_rows
        )

    def test_unknown_kind(self, env):
        db, _, _, _ = env
        with pytest.raises(PlanError):
            HashJoinOp(SeqScanOp(db.catalog.table("left_t")),
                       SeqScanOp(db.catalog.table("right_t")),
                       Col("k"), Col("rk"), kind="cross")


class TestIndexNLJoin:
    def test_matches_hash_join(self, env):
        db, ctx, left_rows, right_rows = env
        nl = IndexNLJoinOp(SeqScanOp(db.catalog.table("left_t")),
                           db.catalog.table("right_t"),
                           Col("k"), "rk")
        expected = sorted(
            l + r for l in left_rows for r in right_rows if l[0] == r[0]
        )
        assert sorted(rows_of(nl, ctx)) == expected

    def test_semi(self, env):
        db, ctx, left_rows, right_rows = env
        nl = IndexNLJoinOp(SeqScanOp(db.catalog.table("left_t")),
                           db.catalog.table("right_t"),
                           Col("k"), "rk", kind="semi")
        keys = {r[0] for r in right_rows}
        assert sorted(rows_of(nl, ctx)) == sorted(
            r for r in left_rows if r[0] in keys
        )

    def test_requires_access_path(self, env):
        db, _, _, _ = env
        with pytest.raises(PlanError):
            IndexNLJoinOp(SeqScanOp(db.catalog.table("left_t")),
                          db.catalog.table("right_t"),
                          Col("k"), "label")


class TestSort:
    def test_ascending(self, env):
        db, ctx, left_rows, _ = env
        op = SortOp(SeqScanOp(db.catalog.table("left_t")),
                    [(Col("x"), False)])
        got = [r[1] for r in rows_of(op, ctx)]
        assert got == sorted(r[1] for r in left_rows)

    def test_descending(self, env):
        db, ctx, left_rows, _ = env
        op = SortOp(SeqScanOp(db.catalog.table("left_t")),
                    [(Col("x"), True)])
        got = [r[1] for r in rows_of(op, ctx)]
        assert got == sorted((r[1] for r in left_rows), reverse=True)

    def test_multi_key(self, env):
        db, ctx, left_rows, _ = env
        op = SortOp(SeqScanOp(db.catalog.table("left_t")),
                    [(Col("k"), False), (Col("x"), True)])
        got = [(r[0], r[1]) for r in rows_of(op, ctx)]
        assert got == sorted(left_rows, key=lambda r: (r[0], -r[1]))

    def test_descending_strings(self, env):
        db, ctx, _, right_rows = env
        op = SortOp(SeqScanOp(db.catalog.table("right_t")),
                    [(Col("label"), True)])
        got = [r[1] for r in rows_of(op, ctx)]
        assert got == sorted((r[1] for r in right_rows), reverse=True)

    def test_top_n(self, env):
        db, ctx, left_rows, _ = env
        op = SortOp(SeqScanOp(db.catalog.table("left_t")),
                    [(Col("x"), True)], limit=5)
        got = [r[1] for r in rows_of(op, ctx)]
        assert got == sorted((r[1] for r in left_rows), reverse=True)[:5]

    def test_empty_input(self, env):
        db, ctx, _, _ = env
        op = SortOp(SeqScanOp(db.catalog.table("left_t"),
                              Col("x") < Const(-1)),
                    [(Col("x"), False)])
        assert rows_of(op, ctx) == []

    def test_no_keys_rejected(self, env):
        db, _, _, _ = env
        with pytest.raises(PlanError):
            SortOp(SeqScanOp(db.catalog.table("left_t")), [])


class TestAggregate:
    def test_group_by_counts_and_sums(self, env):
        db, ctx, left_rows, _ = env
        op = AggOp(SeqScanOp(db.catalog.table("left_t")),
                   [("k", Col("k"))],
                   [AggSpec("n", "count"), AggSpec("s", "sum", Col("x")),
                    AggSpec("lo", "min", Col("x")),
                    AggSpec("hi", "max", Col("x")),
                    AggSpec("mean", "avg", Col("x"))])
        got = {r[0]: r[1:] for r in rows_of(op, ctx)}
        for key in {r[0] for r in left_rows}:
            values = [r[1] for r in left_rows if r[0] == key]
            n, s, lo, hi, mean = got[key]
            assert n == len(values)
            assert s == pytest.approx(sum(values))
            assert lo == min(values) and hi == max(values)
            assert mean == pytest.approx(sum(values) / len(values))

    def test_scalar_aggregate(self, env):
        db, ctx, left_rows, _ = env
        op = AggOp(SeqScanOp(db.catalog.table("left_t")), [],
                   [AggSpec("total", "sum", Col("x"))])
        rows = rows_of(op, ctx)
        assert len(rows) == 1
        assert rows[0][0] == pytest.approx(sum(r[1] for r in left_rows))

    def test_scalar_aggregate_empty_input(self, env):
        db, ctx, _, _ = env
        op = AggOp(SeqScanOp(db.catalog.table("left_t"),
                             Col("x") < Const(-1)),
                   [], [AggSpec("n", "count"), AggSpec("s", "sum", Col("x"))])
        rows = rows_of(op, ctx)
        assert rows == [(0, None)]

    def test_count_distinct(self, env):
        db, ctx, left_rows, _ = env
        op = AggOp(SeqScanOp(db.catalog.table("left_t")), [],
                   [AggSpec("d", "count_distinct", Col("k"))])
        assert rows_of(op, ctx)[0][0] == len({r[0] for r in left_rows})

    def test_invalid_agg_kind(self):
        with pytest.raises(PlanError):
            AggSpec("x", "median", Col("a"))

    def test_sum_requires_argument(self):
        with pytest.raises(PlanError):
            AggSpec("x", "sum")
