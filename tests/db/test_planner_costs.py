"""Tests of the planner cost model (``repro.db.costs``).

Two properties the serving layer depends on:

* estimates are *monotone in table size* — a bigger table costs more,
  so SJF ordering tracks real work;
* estimates and join orders are *stable across data seeds* — the model
  reads only catalog cardinalities, so regenerating the same tier with
  a different seed never changes a join order or the relative cost
  ranking SJF schedules by (generated row counts may differ slightly,
  so absolute costs are not byte-identical).
"""

import pytest

from repro import Machine, tiny_intel
from repro.db import Database, postgres_like
from repro.db.costs import (
    MIN_ROW_ESTIMATE,
    MIN_SELECTIVITY,
    RANGE_SELECTIVITY,
    estimate,
    estimate_cost,
    predicate_selectivity,
    tables_used,
)
from repro.db.exprs import And, Col, Const
from repro.db.operators import AggSpec
from repro.db.planner import Aggregate, Filter, Join, Limit, Scan, Sort
from repro.workloads.tpch import TpchData, load_into
from repro.workloads.tpch.queries import QUERIES


def loaded(tier, seed=20200330):
    machine = Machine(tiny_intel())
    db = Database(machine, postgres_like(), name=f"db-{tier}-{seed}")
    load_into(db, TpchData(tier, seed=seed))
    return db


@pytest.fixture(scope="module")
def db_small():
    return loaded("10MB")


@pytest.fixture(scope="module")
def db_big():
    return loaded("100MB")


@pytest.fixture(scope="module")
def db_small_reseeded():
    return loaded("10MB", seed=777)


class TestMonotonicity:
    def test_scan_cost_grows_with_table_size(self, db_small, db_big):
        for table in ("lineitem", "orders", "customer"):
            small = estimate_cost(db_small.catalog, Scan(table))
            big = estimate_cost(db_big.catalog, Scan(table))
            assert big > small > 0

    def test_bigger_tables_cost_more_than_smaller(self, db_small):
        catalog = db_small.catalog
        assert (estimate_cost(catalog, Scan("lineitem"))
                > estimate_cost(catalog, Scan("orders"))
                > estimate_cost(catalog, Scan("nation")))

    def test_operators_add_cost(self, db_small):
        catalog = db_small.catalog
        scan = Scan("lineitem")
        base = estimate_cost(catalog, scan)
        filtered = Filter(scan, Col("l_quantity") > Const(10))
        agg = Aggregate(scan, (), (AggSpec("n", "count"),))
        sort = Sort(scan, ((Col("l_quantity"), False),))
        assert estimate_cost(catalog, filtered) > base
        assert estimate_cost(catalog, agg) > base
        assert estimate_cost(catalog, sort) > base

    def test_filter_reduces_estimated_rows(self, db_small):
        catalog = db_small.catalog
        scan = estimate(catalog, Scan("lineitem"))
        filtered = estimate(
            catalog, Filter(Scan("lineitem"), Col("l_quantity") > Const(10))
        )
        assert 0 < filtered.rows < scan.rows

    def test_join_cost_exceeds_both_inputs(self, db_small):
        catalog = db_small.catalog
        join = Join(Scan("orders"), Scan("lineitem"),
                    Col("o_orderkey"), Col("l_orderkey"))
        cost = estimate_cost(catalog, join)
        assert cost > estimate_cost(catalog, Scan("orders"))
        assert cost > estimate_cost(catalog, Scan("lineitem"))


class TestSeedStability:
    def test_cost_ranking_stable_across_data_seeds(self, db_small,
                                                   db_small_reseeded):
        # SJF only needs the *ordering* of estimates; that must not
        # depend on which seed generated the data.
        def ranking(db):
            return sorted(
                (1, 3, 6, 12, 14),
                key=lambda n: estimate_cost(db.catalog, QUERIES[n].plan),
            )

        assert ranking(db_small) == ranking(db_small_reseeded)

    def test_costs_close_across_data_seeds(self, db_small,
                                           db_small_reseeded):
        # Generated cardinalities jitter a little between seeds, but a
        # tier pins the scale, so estimates stay within a few percent.
        for number in (1, 3, 6, 12, 14):
            plan = QUERIES[number].plan
            assert plan is not None
            a = estimate_cost(db_small.catalog, plan)
            b = estimate_cost(db_small_reseeded.catalog, plan)
            assert a == pytest.approx(b, rel=0.25)

    def test_join_order_identical_across_data_seeds(self, db_small,
                                                    db_small_reseeded):
        for number in (3, 12, 14):
            plan = QUERIES[number].plan
            assert (db_small.explain(plan)
                    == db_small_reseeded.explain(plan))

    def test_sql_plans_stable_across_seeds(self, db_small,
                                           db_small_reseeded):
        sql = ("SELECT o_orderpriority, COUNT(*) FROM orders, lineitem "
               "WHERE o_orderkey = l_orderkey AND l_quantity > 10 "
               "GROUP BY o_orderpriority")
        assert (db_small.explain(db_small.sql_plan(sql))
                == db_small_reseeded.explain(db_small_reseeded.sql_plan(sql)))


class TestTablesUsed:
    def test_single_scan(self, db_small):
        assert tables_used(Scan("orders")) == ("orders",)

    def test_join_collects_sorted(self, db_small):
        join = Join(Scan("orders"), Scan("lineitem"),
                    Col("o_orderkey"), Col("l_orderkey"))
        assert tables_used(join) == ("lineitem", "orders")


class TestSelectivityComposition:
    """Per-conjunct composition (no per-conjunct floor) with a final
    clamp: deep AND chains shrink multiplicatively but never estimate
    fewer than MIN_ROW_ESTIMATE rows."""

    def test_conjuncts_compose_multiplicatively(self, db_small):
        one = Scan("lineitem", Col("l_quantity") <= Const(25))
        three = Scan("lineitem", And(
            Col("l_quantity") <= Const(25),
            Col("l_discount") <= Const(0.05),
            Col("l_tax") <= Const(0.04),
        ))
        r1 = estimate(db_small.catalog, one).rows
        r3 = estimate(db_small.catalog, three).rows
        # Three range conjuncts estimate well below one (the old code
        # floored each conjunct at DEFAULT_SELECTIVITY, flattening this).
        assert r3 < r1 * RANGE_SELECTIVITY * RANGE_SELECTIVITY * 1.01

    def test_composed_selectivity_clamped(self):
        deep = And(*[Col("l_quantity") <= Const(25) for _ in range(40)])
        assert predicate_selectivity(deep) == MIN_SELECTIVITY

    def test_rows_never_below_min_estimate(self, db_small):
        scan = Scan("lineitem", And(
            *[Col("l_quantity") <= Const(25) for _ in range(40)]))
        plan = Filter(Filter(scan, Col("l_discount") <= Const(0.0)),
                      Col("l_tax") <= Const(0.0))
        assert estimate(db_small.catalog, plan).rows >= MIN_ROW_ESTIMATE


class TestLimitCost:
    """Limit caps the *pipelined* portion of its child's cost."""

    def test_limit_caps_pipelined_scan(self, db_small):
        scan = Scan("lineitem")
        full = estimate(db_small.catalog, scan)
        limited = estimate(db_small.catalog, Limit(scan, 5))
        expected = full.startup + (full.cost - full.startup) * (
            5.0 / full.rows)
        assert limited.cost == pytest.approx(expected)
        assert limited.cost < full.cost * 0.5
        assert limited.rows == 5

    def test_limit_cannot_cap_blocking_child(self, db_small):
        # A sort is blocking: startup == cost, so Limit saves nothing.
        plan = Sort(Scan("lineitem"), ((Col("l_quantity"), False),))
        full = estimate(db_small.catalog, plan)
        limited = estimate(db_small.catalog, Limit(plan, 5))
        assert limited.cost == pytest.approx(full.cost)

    def test_oversized_limit_is_free(self, db_small):
        scan = Scan("customer")
        full = estimate(db_small.catalog, scan)
        limited = estimate(db_small.catalog,
                           Limit(scan, int(full.rows) * 10))
        assert limited.cost == pytest.approx(full.cost)
        assert limited.rows == full.rows
