"""Unit tests for the buffer pool (LRU, disk, frame recycling)."""

import pytest

from repro.db.bufferpool import BufferPool
from repro.db.pagestore import PagedFile
from repro.db.types import Column, INT, Schema
from repro.errors import ConfigError


def make_file(machine, n_rows=2000, page_size=1024, file_id=1):
    schema = Schema([Column("k", INT), Column("v", INT)])
    f = PagedFile(file_id, schema, page_size)
    f.append_rows([(i, i) for i in range(n_rows)])
    return f


class TestFetch:
    def test_miss_then_hit(self, machine):
        pool = BufferPool(machine, 8 * 1024, 1024)
        f = make_file(machine)
        pool.fetch(f, 0)
        pool.fetch(f, 0)
        assert pool.misses == 1 and pool.hits == 1

    def test_miss_costs_disk_time(self, machine):
        pool = BufferPool(machine, 8 * 1024, 1024)
        f = make_file(machine)
        pool.fetch(f, 0)
        assert machine.idle_s > 0

    def test_hit_costs_no_disk(self, machine):
        pool = BufferPool(machine, 8 * 1024, 1024)
        f = make_file(machine)
        pool.fetch(f, 0)
        idle = machine.idle_s
        pool.fetch(f, 0)
        assert machine.idle_s == idle

    def test_frame_rows_match_file(self, machine):
        pool = BufferPool(machine, 8 * 1024, 1024)
        f = make_file(machine)
        frame = pool.fetch(f, 2)
        assert list(frame.rows) == list(f.page(2))

    def test_lru_eviction(self, machine):
        pool = BufferPool(machine, 2 * 1024, 1024)  # 2 frames
        f = make_file(machine)
        pool.fetch(f, 0)
        pool.fetch(f, 1)
        pool.fetch(f, 2)  # evicts page 0
        assert not pool.contains(f, 0)
        assert pool.contains(f, 1) and pool.contains(f, 2)

    def test_recycled_frame_is_cold(self, machine):
        """New page in a reused frame must not hit stale cache lines."""
        pool = BufferPool(machine, 1024, 1024)  # 1 frame
        f = make_file(machine)
        frame = pool.fetch(f, 0)
        machine.load(frame.region.base)      # warm a line of the frame
        pool.fetch(f, 1)                     # recycles the only frame
        frame2 = pool.fetch(f, 1)
        machine.reset_measurements()
        level = machine.load(frame2.region.base)
        assert level > 1  # not an L1 hit: the DMA invalidated it

    def test_two_files_coexist(self, machine):
        pool = BufferPool(machine, 4 * 1024, 1024)
        f1 = make_file(machine, file_id=1)
        f2 = make_file(machine, file_id=2)
        pool.fetch(f1, 0)
        pool.fetch(f2, 0)
        assert pool.contains(f1, 0) and pool.contains(f2, 0)

    def test_clear(self, machine):
        pool = BufferPool(machine, 4 * 1024, 1024)
        f = make_file(machine)
        pool.fetch(f, 0)
        pool.clear()
        assert not pool.contains(f, 0)
        pool.fetch(f, 0)
        assert pool.misses == 2

    def test_hit_rate(self, machine):
        pool = BufferPool(machine, 8 * 1024, 1024)
        f = make_file(machine)
        pool.fetch(f, 0)
        pool.fetch(f, 0)
        pool.fetch(f, 0)
        assert pool.hit_rate() == pytest.approx(2 / 3)

    def test_invalid_geometry(self, machine):
        with pytest.raises(ConfigError):
            BufferPool(machine, 100, 1024)


class TestPoolStats:
    def test_snapshot_matches_live_counters(self, machine):
        pool = BufferPool(machine, 2 * 1024, 1024)
        f = make_file(machine)
        pool.fetch(f, 0)
        pool.fetch(f, 0)
        pool.fetch(f, 1)
        pool.fetch(f, 2)  # recycles a frame
        snap = pool.stats()
        assert snap.hits == pool.hits == 1
        assert snap.misses == pool.misses == 3
        assert snap.recycles == pool.recycles == 1
        assert snap.accesses == 4

    def test_snapshot_does_not_reset_counters(self, machine):
        pool = BufferPool(machine, 8 * 1024, 1024)
        f = make_file(machine)
        pool.fetch(f, 0)
        pool.stats()
        assert pool.misses == 1  # unlike reset_stats, stats() is pure

    def test_delta_since_snapshot(self, machine):
        pool = BufferPool(machine, 8 * 1024, 1024)
        f = make_file(machine)
        pool.fetch(f, 0)
        base = pool.stats()
        pool.fetch(f, 0)
        pool.fetch(f, 1)
        delta = pool.stats_since(base)
        assert (delta.hits, delta.misses) == (1, 1)
        assert delta.hit_rate() == pytest.approx(0.5)

    def test_snapshot_is_immutable(self, machine):
        pool = BufferPool(machine, 8 * 1024, 1024)
        snap = pool.stats()
        with pytest.raises(AttributeError):
            snap.hits = 99

    def test_empty_delta_hit_rate(self, machine):
        pool = BufferPool(machine, 8 * 1024, 1024)
        assert pool.stats().hit_rate() == 0.0


class TestInterleavedScans:
    """Regression: eviction order with two scans sharing a 2-frame pool.

    Scan A walks pages 0,1,2; scan B walks pages 3,4,5; the pulls
    alternate A,B,A,B,...  Every fetch must recycle the other scan's
    frame (pure LRU), so all six accesses miss and the final residents
    are the last two pages touched.  A pool that pinned per-scan frames
    or evicted MRU would break these counts.
    """

    def test_alternating_scans_thrash_lru(self, machine):
        pool = BufferPool(machine, 2 * 1024, 1024)
        f = make_file(machine, n_rows=2000)
        order = []
        for a_page, b_page in zip((0, 1, 2), (3, 4, 5)):
            pool.fetch(f, a_page)
            pool.fetch(f, b_page)
            order.append((a_page, b_page))
        assert pool.misses == 6 and pool.hits == 0
        assert pool.recycles == 4  # first two fetches fill empty frames
        assert pool.contains(f, 2) and pool.contains(f, 5)
        assert not any(pool.contains(f, p) for p in (0, 1, 3, 4))

    def test_interleaved_deltas_attribute_the_window(self, machine):
        pool = BufferPool(machine, 2 * 1024, 1024)
        f = make_file(machine, n_rows=2000)
        base_a = pool.stats()
        pool.fetch(f, 0)          # A
        base_b = pool.stats()
        pool.fetch(f, 3)          # B
        pool.fetch(f, 1)          # A
        delta_b = pool.stats_since(base_b)
        delta_a = pool.stats_since(base_a)
        assert delta_a.accesses == 3
        assert delta_b.accesses == 2
        # Snapshots taken at different times never interfere.
        assert delta_a.since(delta_b).accesses == 1
