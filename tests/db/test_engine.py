"""Tests of the Database facade."""

import pytest

from repro import Machine, tiny_intel
from repro.db import Database, mysql_like, postgres_like, sqlite_like
from repro.db.exprs import Col
from repro.db.planner import Scan, Sort
from repro.db.table import ClusteredTable, HeapTable
from repro.db.types import Column, INT, Schema
from repro.errors import CatalogError

SCHEMA = Schema([Column("k", INT), Column("v", INT)])
ROWS = [(i, i * i) for i in range(50)]


class TestCreateTable:
    def test_heap_for_postgres(self):
        db = Database(Machine(tiny_intel()), postgres_like())
        table = db.create_table("t", SCHEMA, ROWS)
        assert isinstance(table.storage, HeapTable)
        assert table.n_rows == 50

    def test_clustered_for_sqlite(self):
        db = Database(Machine(tiny_intel()), sqlite_like())
        table = db.create_table("t", SCHEMA, ROWS)
        assert isinstance(table.storage, ClusteredTable)

    def test_clustered_sorts_by_pk(self):
        db = Database(Machine(tiny_intel()), mysql_like())
        shuffled = list(reversed(ROWS))
        db.create_table("t", SCHEMA, shuffled, primary_key="k")
        got = [r for r, _ in db.catalog.table("t").storage.seq_scan((0,))]
        assert got == ROWS

    def test_heap_gets_pk_index(self):
        db = Database(Machine(tiny_intel()), postgres_like())
        table = db.create_table("t", SCHEMA, ROWS, primary_key="k")
        assert table.index_on("k") is not None

    def test_secondary_index(self):
        db = Database(Machine(tiny_intel()), sqlite_like())
        table = db.create_table("t", SCHEMA, ROWS, indexes=["v"])
        index = table.index_on("v")
        assert index is not None
        assert index.via_primary_key  # clustered: payload is the PK

    def test_duplicate_table_rejected(self):
        db = Database(Machine(tiny_intel()), postgres_like())
        db.create_table("t", SCHEMA, ROWS)
        with pytest.raises(CatalogError):
            db.create_table("t", SCHEMA, ROWS)


class TestExecute:
    def test_execute_and_sink(self):
        db = Database(Machine(tiny_intel()), sqlite_like())
        db.create_table("t", SCHEMA, ROWS)
        out = db.execute(Scan("t"))
        assert sorted(out) == ROWS
        assert db._sink.rows_emitted >= 50

    def test_explain(self):
        db = Database(Machine(tiny_intel()), postgres_like())
        db.create_table("t", SCHEMA, ROWS)
        text = db.explain(Sort(Scan("t"), ((Col("v"), True),)))
        assert "Sort" in text and "SeqScan" in text

    def test_clear_caches_forces_disk(self):
        machine = Machine(tiny_intel())
        db = Database(machine, postgres_like())
        db.create_table("t", SCHEMA, ROWS)
        db.execute(Scan("t"))          # warm the pool
        machine.reset_measurements()
        db.execute(Scan("t"))
        assert machine.idle_s == 0.0   # all hits
        db.clear_caches()
        machine.reset_measurements()
        db.execute(Scan("t"))
        assert machine.idle_s > 0.0    # cold again

    def test_set_state_region_keeps_overflow(self):
        machine = Machine(tiny_intel())
        db = Database(machine, sqlite_like())
        old = db.state_region
        new = machine.address_space.alloc(1024, "new-state")
        db.set_state_region(new)
        assert db.state_region is new
        assert db.state_overflow_region is old
