"""Tests of the logical->physical planner's per-engine rules."""

import pytest

from repro import Machine, tiny_intel
from repro.db import Database, mysql_like, postgres_like, sqlite_like
from repro.db.exprs import Between, Col, Const
from repro.db.operators import (
    HashJoinOp,
    IndexNLJoinOp,
    IndexOrderScanOp,
    IndexRangeScanOp,
    SeqScanOp,
)
from repro.db.planner import Aggregate, Join, Project, Scan, collect_used_columns
from repro.db.operators import AggSpec
from repro.db.types import Column, FLOAT, INT, Schema
from repro.errors import PlanError

SCHEMA_A = Schema([Column("ak", INT), Column("av", FLOAT), Column("af", INT)])
SCHEMA_B = Schema([Column("bk", INT), Column("bv", FLOAT)])


def make_db(profile):
    machine = Machine(tiny_intel())
    db = Database(machine, profile, name="plan")
    db.create_table("a", SCHEMA_A, [(i, float(i), i % 5) for i in range(100)],
                    primary_key="ak", indexes=["af"])
    db.create_table("b", SCHEMA_B, [(i, float(i)) for i in range(20)],
                    primary_key="bk")
    return db


class TestAccessPaths:
    def test_pg_uses_index_for_range(self):
        db = make_db(postgres_like())
        plan = db.plan(Scan("a", Between(Col("ak"), 5, 10)))
        assert isinstance(plan, IndexRangeScanOp)

    def test_sqlite_prefers_seq_scan(self):
        db = make_db(sqlite_like())
        plan = db.plan(Scan("a", Between(Col("ak"), 5, 10)))
        assert isinstance(plan, SeqScanOp)

    def test_forced_seq(self):
        db = make_db(postgres_like())
        plan = db.plan(Scan("a", Between(Col("ak"), 5, 10), access="seq"))
        assert isinstance(plan, SeqScanOp)

    def test_forced_index_order_uses_secondary(self):
        db = make_db(mysql_like())
        plan = db.plan(Scan("a", access="index_order"))
        assert isinstance(plan, IndexOrderScanOp)
        assert plan.index.column == "af"  # the (only) secondary index

    def test_no_index_for_unindexed_column(self):
        db = make_db(postgres_like())
        plan = db.plan(Scan("a", Between(Col("av"), 1.0, 2.0)))
        assert isinstance(plan, SeqScanOp)

    def test_strict_bound_kept_in_residual(self):
        db = make_db(postgres_like())
        plan = db.plan(Scan("a", Col("ak") < Const(10)))
        assert isinstance(plan, IndexRangeScanOp)
        assert plan.residual is not None

    def test_equality_becomes_point_range(self):
        db = make_db(postgres_like())
        plan = db.plan(Scan("a", Col("ak").eq(7)))
        assert isinstance(plan, IndexRangeScanOp)
        assert plan.lo == 7 and plan.hi == 7

    def test_results_identical_across_paths(self):
        logical = Scan("a", Between(Col("ak"), 5, 60))
        results = {
            name: sorted(make_db(profile()).execute(logical))
            for name, profile in (("pg", postgres_like),
                                  ("lite", sqlite_like))
        }
        assert results["pg"] == results["lite"]


class TestJoins:
    def join(self):
        return Join(Scan("a"), Scan("b"), Col("ak"), Col("bk"))

    def test_pg_hash_join(self):
        plan = make_db(postgres_like()).plan(self.join())
        assert isinstance(plan, HashJoinOp)

    def test_sqlite_index_nl(self):
        plan = make_db(sqlite_like()).plan(self.join())
        assert isinstance(plan, IndexNLJoinOp)

    def test_sqlite_falls_back_to_hash_without_path(self):
        join = Join(Scan("a"), Scan("b"), Col("av"), Col("bv"))
        plan = make_db(sqlite_like()).plan(join)
        assert isinstance(plan, HashJoinOp)

    def test_join_results_match_across_strategies(self):
        join = self.join()
        pg = sorted(make_db(postgres_like()).execute(join))
        lite = sorted(make_db(sqlite_like()).execute(join))
        assert pg == lite


class TestColumnUsage:
    def test_root_scan_is_fully_visible(self):
        used, visible = collect_used_columns(Scan("a"))
        assert visible == {"a"}

    def test_project_hides_children(self):
        plan = Project(Scan("a"), (("x", Col("av")),))
        used, visible = collect_used_columns(plan)
        assert visible == set()
        assert used == {"av"}

    def test_aggregate_hides_children(self):
        plan = Aggregate(Scan("a"), (("af", Col("af")),),
                         (AggSpec("n", "count"),))
        used, visible = collect_used_columns(plan)
        assert visible == set()
        assert used == {"af"}

    def test_semi_join_hides_right(self):
        plan = Join(Scan("a"), Scan("b"), Col("ak"), Col("bk"), kind="semi")
        _, visible = collect_used_columns(plan)
        assert visible == {"a"}

    def test_inner_join_exposes_both(self):
        _, visible = collect_used_columns(
            Join(Scan("a"), Scan("b"), Col("ak"), Col("bk"))
        )
        assert visible == {"a", "b"}


class TestErrors:
    def test_unknown_table(self):
        db = make_db(postgres_like())
        with pytest.raises(Exception):
            db.plan(Scan("missing"))

    def test_forced_range_without_conjunct(self):
        db = make_db(postgres_like())
        with pytest.raises(PlanError):
            db.plan(Scan("a", Col("av").eq(1.0), access="ak"))
