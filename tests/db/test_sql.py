"""Tests for the SQL front-end: lexer, parser, and translation."""

import pytest

from repro import Machine, tiny_intel
from repro.db import Database, postgres_like, sqlite_like
from repro.db.sql.lexer import tokenize
from repro.db.sql.parser import parse
from repro.db.types import Column, FLOAT, INT, STR, Schema
from repro.errors import SqlError


# ------------------------------------------------------------------- lexer

class TestLexer:
    def test_keywords_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:3]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_keep_case(self):
        tokens = tokenize("MyTable")
        assert tokens[0].kind == "IDENT" and tokens[0].value == "MyTable"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].value == "42" and tokens[1].value == "3.14"

    def test_strings_with_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == "STRING" and tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokenize("'oops")

    def test_two_char_operators(self):
        tokens = tokenize("<= >= <> !=")
        assert [t.value for t in tokens[:4]] == ["<=", ">=", "<>", "!="]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- comment\n 1")
        assert tokens[1].value == "1"

    def test_stray_character(self):
        with pytest.raises(SqlError):
            tokenize("SELECT @")

    def test_qualified_name_tokens(self):
        tokens = tokenize("t.col")
        assert [t.value for t in tokens[:3]] == ["t", ".", "col"]


# ------------------------------------------------------------------ parser

class TestParser:
    def test_simple_select(self):
        stmt = parse("SELECT a, b FROM t")
        assert len(stmt.items) == 2
        assert stmt.tables[0].name == "t"

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.select_star

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.tables[0].alias == "u"

    def test_where_between_and_in(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5 "
                     "AND b IN (1, 2, 3)")
        assert stmt.where is not None

    def test_join_on(self):
        stmt = parse("SELECT a FROM t JOIN u ON x = y")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].kind == "inner"

    def test_left_join(self):
        stmt = parse("SELECT a FROM t LEFT OUTER JOIN u ON x = y")
        assert stmt.joins[0].kind == "left"

    def test_group_having_order_limit(self):
        stmt = parse("SELECT a, COUNT(*) FROM t GROUP BY a "
                     "HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 10")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].descending
        assert stmt.limit == 10

    def test_date_literal(self):
        from datetime import date
        stmt = parse("SELECT a FROM t WHERE d < DATE '1995-03-15'")
        literal = stmt.where.right
        assert literal.value == date(1995, 3, 15).toordinal()

    def test_bad_date(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t WHERE d < DATE 'soon'")

    def test_case_when(self):
        stmt = parse("SELECT CASE WHEN a > 1 THEN 1 ELSE 0 END FROM t")
        assert stmt.items

    def test_arith_precedence(self):
        stmt = parse("SELECT a + b * 2 FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_count_star_only(self):
        with pytest.raises(SqlError):
            parse("SELECT SUM(*) FROM t")

    def test_trailing_garbage(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t extra garbage ;")

    def test_limit_must_be_integer(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t LIMIT 2.5")

    def test_not_like(self):
        stmt = parse("SELECT a FROM t WHERE s NOT LIKE 'x%'")
        assert stmt.where.negated


# -------------------------------------------------------------- end-to-end

SCHEMA = Schema([
    Column("pid", INT), Column("grp", INT), Column("score", FLOAT),
    Column("name", STR, 16),
])
ROWS = [(i, i % 4, float(i * 7 % 23), f"name{i % 6}") for i in range(60)]

GRP_SCHEMA = Schema([Column("gid", INT), Column("gname", STR, 8)])
GRP_ROWS = [(i, f"g{i}") for i in range(4)]


@pytest.fixture(params=["postgresql", "sqlite"])
def sql_db(request):
    profile = postgres_like() if request.param == "postgresql" else sqlite_like()
    db = Database(Machine(tiny_intel()), profile, name="sqltest")
    db.create_table("people", SCHEMA, ROWS, primary_key="pid",
                    indexes=["grp"])
    db.create_table("grp_names", GRP_SCHEMA, GRP_ROWS, primary_key="gid")
    return db


class TestExecution:
    def test_filter_and_projection(self, sql_db):
        rows = sql_db.sql("SELECT pid FROM people WHERE score > 10 "
                          "ORDER BY pid")
        expected = sorted(r[0] for r in ROWS if r[2] > 10)
        assert [r[0] for r in rows] == expected

    def test_select_star(self, sql_db):
        rows = sql_db.sql("SELECT * FROM people WHERE pid = 5")
        assert rows == [ROWS[5]]

    def test_group_by(self, sql_db):
        rows = sql_db.sql("SELECT grp, COUNT(*) AS n, SUM(score) AS s "
                          "FROM people GROUP BY grp ORDER BY grp")
        for grp, n, s in rows:
            members = [r for r in ROWS if r[1] == grp]
            assert n == len(members)
            assert s == pytest.approx(sum(r[2] for r in members))

    def test_having(self, sql_db):
        rows = sql_db.sql("SELECT name, COUNT(*) AS n FROM people "
                          "GROUP BY name HAVING COUNT(*) > 10 ORDER BY name")
        assert all(r[1] > 10 for r in rows)

    def test_comma_join(self, sql_db):
        rows = sql_db.sql(
            "SELECT pid, gname FROM people, grp_names "
            "WHERE grp = gid AND pid < 8 ORDER BY pid"
        )
        assert [r for r in rows] == [
            (r[0], f"g{r[1]}") for r in ROWS if r[0] < 8
        ]

    def test_explicit_join(self, sql_db):
        rows = sql_db.sql(
            "SELECT pid FROM people JOIN grp_names ON grp = gid "
            "WHERE gname = 'g1' ORDER BY pid"
        )
        assert [r[0] for r in rows] == [r[0] for r in ROWS if r[1] == 1]

    def test_distinct(self, sql_db):
        rows = sql_db.sql("SELECT DISTINCT grp FROM people ORDER BY grp")
        assert [r[0] for r in rows] == [0, 1, 2, 3]

    def test_like(self, sql_db):
        rows = sql_db.sql("SELECT COUNT(*) FROM people WHERE name LIKE 'name1%'")
        assert rows[0][0] == sum(1 for r in ROWS if r[3].startswith("name1"))

    def test_limit_without_order(self, sql_db):
        rows = sql_db.sql("SELECT pid FROM people LIMIT 5")
        assert len(rows) == 5

    def test_order_by_aggregate_alias(self, sql_db):
        rows = sql_db.sql("SELECT grp, COUNT(*) AS n FROM people "
                          "GROUP BY grp ORDER BY n DESC, grp")
        assert [r[1] for r in rows] == sorted((r[1] for r in rows),
                                              reverse=True)

    def test_arith_in_select(self, sql_db):
        rows = sql_db.sql("SELECT pid, score * 2 + 1 AS s2 FROM people "
                          "WHERE pid = 3")
        assert rows[0][1] == pytest.approx(ROWS[3][2] * 2 + 1)

    def test_case_when_sum(self, sql_db):
        rows = sql_db.sql(
            "SELECT SUM(CASE WHEN grp = 1 THEN 1 ELSE 0 END) AS n FROM people"
        )
        assert rows[0][0] == sum(1 for r in ROWS if r[1] == 1)


class TestBindingErrors:
    def test_unknown_table(self, sql_db):
        with pytest.raises(Exception):
            sql_db.sql("SELECT a FROM nope")

    def test_unknown_column(self, sql_db):
        with pytest.raises(SqlError):
            sql_db.sql("SELECT wat FROM people")

    def test_no_join_condition(self, sql_db):
        with pytest.raises(SqlError):
            sql_db.sql("SELECT pid FROM people, grp_names")

    def test_star_with_aggregate(self, sql_db):
        with pytest.raises(SqlError):
            sql_db.sql("SELECT * FROM people GROUP BY grp")

    def test_aggregate_in_where(self, sql_db):
        with pytest.raises(SqlError):
            sql_db.sql("SELECT pid FROM people WHERE COUNT(*) > 1")

    def test_unsupported_like_pattern(self, sql_db):
        with pytest.raises(SqlError):
            sql_db.sql("SELECT pid FROM people WHERE name LIKE 'a%b%c'")
