"""Tests for the write path: INSERT / UPDATE / DELETE on both storage
organisations, with index maintenance."""

import pytest

from repro import Machine, tiny_intel
from repro.db import Database, mysql_like, postgres_like, sqlite_like
from repro.db.exprs import Col, Const
from repro.db.planner import Scan
from repro.db.types import Column, FLOAT, INT, Schema
from repro.errors import DatabaseError

SCHEMA = Schema([Column("k", INT), Column("v", FLOAT), Column("g", INT)])
ROWS = [(i, float(i), i % 3) for i in range(40)]

ALL_PROFILES = [postgres_like, sqlite_like, mysql_like]


@pytest.fixture(params=ALL_PROFILES, ids=lambda p: p().name)
def db(request):
    database = Database(Machine(tiny_intel()), request.param(), name="dml")
    database.create_table("t", SCHEMA, ROWS, primary_key="k", indexes=["g"])
    return database


class TestInsert:
    def test_visible_in_scan(self, db):
        assert db.insert("t", [(100, 1.5, 0)]) == 1
        assert (100, 1.5, 0) in db.execute(Scan("t"))

    def test_visible_through_index(self, db):
        db.insert("t", [(100, 1.5, 9)])
        got = db.execute(Scan("t", Col("g").eq(9)))
        assert got == [(100, 1.5, 9)]

    def test_n_rows_updated(self, db):
        before = db.catalog.table("t").n_rows
        db.insert("t", [(100, 0.0, 0), (101, 0.0, 0)])
        assert db.catalog.table("t").n_rows == before + 2

    def test_arity_checked(self, db):
        with pytest.raises(DatabaseError):
            db.insert("t", [(1, 2)])

    def test_charges_stores(self, db):
        machine = db.machine
        machine.reset_measurements()
        db.insert("t", [(100, 1.0, 0)])
        assert machine.pmu.counters.n_store > 0


class TestUpdate:
    def test_expression_assignment(self, db):
        n = db.update("t", {"v": Col("v") * Const(10)}, Col("k") < Const(3))
        assert n == 3
        values = {r[0]: r[1] for r in db.execute(Scan("t"))}
        assert values[0] == 0.0 and values[2] == 20.0 and values[3] == 3.0

    def test_constant_assignment(self, db):
        db.update("t", {"v": 99.0}, Col("k").eq(7))
        assert (7, 99.0, 1) in db.execute(Scan("t"))

    def test_update_all_rows(self, db):
        assert db.update("t", {"v": Const(0.0)}) == 40
        assert all(r[1] == 0.0 for r in db.execute(Scan("t")))

    def test_indexed_column_maintained(self, db):
        db.update("t", {"g": Const(8)}, Col("k").eq(5))
        via_index = db.execute(Scan("t", Col("g").eq(8)))
        assert [r[0] for r in via_index] == [5]
        # The old index entry must be gone.
        old = db.execute(Scan("t", Col("g").eq(5 % 3)))
        assert 5 not in {r[0] for r in old}

    def test_primary_key_update_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.update("t", {"k": Const(999)})


class TestDelete:
    def test_delete_by_predicate(self, db):
        assert db.delete("t", Col("g").eq(0)) == 14
        remaining = db.execute(Scan("t"))
        assert len(remaining) == 26
        assert all(r[2] != 0 for r in remaining)

    def test_index_paths_skip_deleted(self, db):
        db.delete("t", Col("k").eq(9))
        assert db.execute(Scan("t", Col("g").eq(0))) == [
            r for r in ROWS if r[2] == 0 and r[0] != 9
        ]

    def test_delete_everything(self, db):
        assert db.delete("t") == 40
        assert db.execute(Scan("t")) == []
        assert db.catalog.table("t").n_rows == 0

    def test_reinsert_after_delete(self, db):
        db.delete("t", Col("k").eq(3))
        db.insert("t", [(3, -1.0, 2)])
        got = [r for r in db.execute(Scan("t")) if r[0] == 3]
        assert got == [(3, -1.0, 2)]


class TestSqlDml:
    def test_insert_statement(self, db):
        assert db.sql("INSERT INTO t VALUES (200, 5.5, 1)") == 1
        assert db.sql("SELECT v FROM t WHERE k = 200") == [(5.5,)]

    def test_insert_negative_and_null(self, db):
        schema = Schema([Column("a", INT), Column("b", FLOAT)])
        db.create_table("u", schema, [(1, 1.0)])
        assert db.sql("INSERT INTO u VALUES (-5, NULL)") == 1
        rows = db.sql("SELECT * FROM u WHERE a < 0")
        assert rows == [(-5, None)]

    def test_update_statement(self, db):
        n = db.sql("UPDATE t SET v = v + 1 WHERE g = 2")
        assert n == sum(1 for r in ROWS if r[2] == 2)

    def test_delete_statement(self, db):
        assert db.sql("DELETE FROM t WHERE k BETWEEN 0 AND 9") == 10
        assert db.sql("SELECT COUNT(*) FROM t") == [(30,)]

    def test_unknown_column_in_set(self, db):
        from repro.errors import SqlError
        with pytest.raises(SqlError):
            db.sql("UPDATE t SET nope = 1")


class TestWriteEnergyShape:
    def test_writes_store_heavy(self):
        """Write statements produce a higher store:load ratio than reads."""
        machine = Machine(tiny_intel())
        db = Database(machine, sqlite_like(), name="w")
        db.create_table("t", SCHEMA, ROWS, primary_key="k")
        machine.reset_measurements()
        db.execute(Scan("t"))
        counters = machine.pmu.counters
        read_ratio = counters.n_store / max(1, counters.n_l1d)
        machine.reset_measurements()
        db.insert("t", [(100 + i, 0.0, 0) for i in range(20)])
        counters = machine.pmu.counters
        write_ratio = counters.n_store / max(1, counters.n_l1d)
        assert write_ratio > read_ratio


class TestWalWraparound:
    """Regression: the WAL ring must wrap on the *padded* record size.

    The cursor advances by the 8-byte-aligned footprint, so a record
    whose raw length still fit but whose aligned end crossed the region
    boundary used to leave the cursor past ``size`` — and the next
    append then stored beyond the WAL arena.
    """

    def _db(self):
        machine = Machine(tiny_intel())
        db = Database(machine, postgres_like(), name="wal")
        db.create_table("t", SCHEMA, ROWS, primary_key="k")
        return db

    def test_boundary_record_wraps(self):
        db = self._db()
        size = db._wal_region.size
        # row_bytes=1 -> record=25 (unaligned), padded=32.  Park the
        # cursor so the raw record fits exactly but the padded one
        # does not: old code kept the cursor, then walked off the end.
        db._wal_cursor = size - 25
        db._dml_row_overhead(1)
        assert db._wal_cursor == 32  # wrapped to 0, then advanced
        assert db._wal_cursor <= size

    def test_appends_never_leave_region(self):
        db = self._db()
        region = db._wal_region
        stored: list[tuple[int, int]] = []
        real = db.machine.store_bytes

        def spy(addr, nbytes):
            stored.append((addr, nbytes))
            real(addr, nbytes)

        db.machine.store_bytes = spy
        try:
            db._wal_cursor = region.size - 25
            for _ in range(4):
                db._dml_row_overhead(1)
                assert db._wal_cursor <= region.size
        finally:
            db.machine.store_bytes = real
        wal_stores = [
            (a, n) for a, n in stored
            if region.base <= a < region.base + region.size
            or region.base <= a + n <= region.base + region.size
        ]
        assert wal_stores, "expected WAL append traffic"
        for addr, nbytes in stored:
            if addr >= region.base + region.size:
                # Stores past the region end are exactly the bug.
                raise AssertionError(
                    f"WAL append at +{addr - region.base} beyond "
                    f"region size {region.size}"
                )
