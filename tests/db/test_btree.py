"""Unit and property tests for the B-tree (bulk load, insert, scans)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.btree import BTree
from repro.errors import DatabaseError


def tree(machine, node_bytes=256, payload_bytes=8) -> BTree:
    return BTree(machine, "t", payload_bytes=payload_bytes,
                 node_bytes=node_bytes)


class TestBulkLoad:
    def test_round_trip(self, machine):
        t = tree(machine)
        pairs = [(k, f"v{k}") for k in range(500)]
        t.bulk_load(pairs)
        assert t.n_entries == 500
        assert t.keys_in_order() == list(range(500))

    def test_search_every_key(self, machine):
        t = tree(machine)
        t.bulk_load([(k, k * 10) for k in range(0, 100, 2)])
        for k in range(0, 100, 2):
            hit = t.search(k)
            assert hit is not None and hit[0] == k * 10

    def test_search_missing(self, machine):
        t = tree(machine)
        t.bulk_load([(k, k) for k in range(0, 100, 2)])
        assert t.search(1) is None
        assert t.search(-5) is None
        assert t.search(999) is None

    def test_unsorted_input_rejected(self, machine):
        with pytest.raises(DatabaseError):
            tree(machine).bulk_load([(3, "a"), (1, "b")])

    def test_bulk_load_nonempty_rejected(self, machine):
        t = tree(machine)
        t.bulk_load([(1, "a")])
        with pytest.raises(DatabaseError):
            t.bulk_load([(2, "b")])

    def test_height_grows_logarithmically(self, machine):
        small = tree(machine)
        small.bulk_load([(k, k) for k in range(10)])
        big = tree(machine)
        big.bulk_load([(k, k) for k in range(2000)])
        assert big.height > small.height
        assert big.height <= 5

    def test_empty_bulk_load(self, machine):
        t = tree(machine)
        t.bulk_load([])
        assert t.n_entries == 0
        assert t.search(1) is None


class TestInsert:
    def test_insert_then_search(self, machine):
        t = tree(machine)
        for k in (5, 1, 9, 3, 7):
            t.insert(k, k * 2)
        for k in (5, 1, 9, 3, 7):
            assert t.search(k)[0] == k * 2

    def test_inserts_cause_splits(self, machine):
        t = tree(machine, node_bytes=256)
        for k in range(300):
            t.insert(k, k)
        assert t.height >= 2
        assert t.keys_in_order() == list(range(300))

    def test_reverse_order_inserts(self, machine):
        t = tree(machine, node_bytes=256)
        for k in range(200, 0, -1):
            t.insert(k, k)
        assert t.keys_in_order() == list(range(1, 201))

    def test_insert_into_bulk_loaded(self, machine):
        t = tree(machine)
        t.bulk_load([(k, k) for k in range(0, 100, 2)])
        t.insert(51, 51)
        assert t.search(51)[0] == 51
        assert t.keys_in_order() == sorted(list(range(0, 100, 2)) + [51])


class TestScans:
    def test_scan_all_in_order(self, machine):
        t = tree(machine)
        t.bulk_load([(k, k) for k in range(300)])
        keys = [k for k, _, _ in t.scan_all()]
        assert keys == list(range(300))

    def test_range_scan_inclusive(self, machine):
        t = tree(machine)
        t.bulk_load([(k, k) for k in range(100)])
        keys = [k for k, _, _ in t.range_scan(10, 20)]
        assert keys == list(range(10, 21))

    def test_range_scan_with_duplicates(self, machine):
        """The duplicate-key regression: all equal keys must be found."""
        t = tree(machine, node_bytes=256)
        pairs = sorted([(k % 7, i) for i, k in enumerate(range(200))])
        t.bulk_load(pairs)
        hits = [payload for _, payload, _ in t.range_scan(3, 3)]
        expected = [p for k, p in pairs if k == 3]
        assert sorted(hits) == sorted(expected)

    def test_range_scan_crossing_leaves(self, machine):
        t = tree(machine, node_bytes=256)
        t.bulk_load([(k, k) for k in range(1000)])
        keys = [k for k, _, _ in t.range_scan(95, 905)]
        assert keys == list(range(95, 906))

    def test_range_scan_empty(self, machine):
        t = tree(machine)
        t.bulk_load([(k, k) for k in range(0, 100, 10)])
        assert list(t.range_scan(41, 49)) == []

    def test_on_leaf_callback_fires_per_leaf(self, machine):
        t = tree(machine, node_bytes=256)
        t.bulk_load([(k, k) for k in range(500)])
        visits = []
        list(t.scan_all(on_leaf=visits.append))
        assert len(visits) == len(t.levels()[-1])


class TestTopology:
    def test_levels_root_first(self, machine):
        t = tree(machine, node_bytes=256)
        t.bulk_load([(k, k) for k in range(500)])
        levels = t.levels()
        assert len(levels[0]) == 1
        assert len(levels[-1]) > 1
        assert t.n_nodes == sum(len(level) for level in levels)

    def test_relocate_top_levels(self, arm_machine):
        t = BTree(arm_machine, "t", payload_bytes=8, node_bytes=256)
        t.bulk_load([(k, k) for k in range(500)])
        moved = t.relocate_top_levels(arm_machine.tcm, budget_bytes=1024)
        assert moved >= 1
        assert t.levels()[0][0].region.base >= 1 << 40
        # Tree still works after relocation.
        assert t.search(250)[0] == 250

    def test_relocate_zero_budget(self, arm_machine):
        t = BTree(arm_machine, "t", payload_bytes=8, node_bytes=256)
        t.bulk_load([(k, k) for k in range(100)])
        assert t.relocate_top_levels(arm_machine.tcm, budget_bytes=0) == 0


class TestAccounting:
    def test_search_issues_dependent_loads(self, machine):
        t = tree(machine, node_bytes=256)
        t.bulk_load([(k, k) for k in range(1000)])
        machine.reset_measurements()
        t.search(500)
        counters = machine.pmu.counters
        assert counters.n_load_inst > 0
        assert counters.stall_cycles > 0

    def test_scan_charges_key_loads(self, machine):
        t = tree(machine)
        t.bulk_load([(k, k) for k in range(100)])
        machine.reset_measurements()
        list(t.scan_all())
        assert machine.pmu.counters.n_load_inst >= 100


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=-10_000, max_value=10_000),
                    unique=True, min_size=1, max_size=300))
    def test_insert_matches_dict(self, keys):
        from repro import Machine, tiny_intel

        machine = Machine(tiny_intel())
        t = BTree(machine, "p", payload_bytes=8, node_bytes=256)
        reference = {}
        for key in keys:
            t.insert(key, key * 3)
            reference[key] = key * 3
        assert t.keys_in_order() == sorted(reference)
        for key, value in reference.items():
            assert t.search(key)[0] == value

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                 max_size=200),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
    )
    def test_range_scan_matches_filter(self, keys, a, b):
        from repro import Machine, tiny_intel

        lo, hi = min(a, b), max(a, b)
        machine = Machine(tiny_intel())
        t = BTree(machine, "p", payload_bytes=8, node_bytes=256)
        t.bulk_load(sorted((k, i) for i, k in enumerate(keys)))
        got = sorted(payload for _, payload, _ in t.range_scan(lo, hi))
        expected = sorted(i for i, k in enumerate(keys) if lo <= k <= hi)
        assert got == expected
