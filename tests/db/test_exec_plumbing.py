"""Unit tests for the executor plumbing: temp arena, output sink,
per-row overhead accounting."""

import pytest

from repro.db.operators.base import ExecContext, OutputSink, TempArena
from repro.db.profiles import sqlite_like


class TestTempArena:
    def test_alloc_within_arena(self, machine):
        arena = TempArena(machine, 4096)
        region = arena.alloc(100)
        assert arena.region.base <= region.base < arena.region.end

    def test_allocations_disjoint(self, machine):
        arena = TempArena(machine, 4096)
        a = arena.alloc(100)
        b = arena.alloc(100)
        assert a.end <= b.base or b.end <= a.base

    def test_reset_reuses_addresses(self, machine):
        arena = TempArena(machine, 4096)
        first = arena.alloc(128)
        arena.reset()
        second = arena.alloc(128)
        assert second.base == first.base  # warm temp memory across queries

    def test_overflow_grows_cold_extension(self, machine):
        arena = TempArena(machine, 1024)
        arena.alloc(1024)
        extension = arena.alloc(4096)  # does not fit: extension region
        assert not arena.region.contains(extension.base)

    def test_bytes_used(self, machine):
        arena = TempArena(machine, 4096)
        arena.alloc(100)
        assert arena.bytes_used == 128  # line-aligned


class TestOutputSink:
    def test_emit_counts(self, machine):
        sink = OutputSink(machine, size=1024)
        sink.emit(100)
        sink.emit(50)
        assert sink.rows_emitted == 2
        assert sink.bytes_emitted == 150

    def test_emit_charges_stores(self, machine):
        sink = OutputSink(machine, size=1024)
        machine.reset_measurements()
        sink.emit(64)
        assert machine.pmu.counters.n_store == 8  # 64B = 8 words

    def test_ring_wraps(self, machine):
        sink = OutputSink(machine, size=256)
        for _ in range(10):
            sink.emit(100)  # > size total: cursor must wrap, not overflow
        assert sink.rows_emitted == 10

    def test_reset(self, machine):
        sink = OutputSink(machine, size=256)
        sink.emit(10)
        sink.reset()
        assert sink.rows_emitted == 0 and sink.bytes_emitted == 0


class TestOverheadAccounting:
    def make_ctx(self, machine):
        return ExecContext(
            machine=machine, profile=sqlite_like(), catalog=None,
            temp=TempArena(machine, 4096), sink=OutputSink(machine),
            state_region=machine.address_space.alloc(4096, "st"),
            cold_region=machine.address_space.alloc(1 << 14, "cold"),
        )

    def test_row_overhead_matches_profile(self, machine):
        ctx = self.make_ctx(machine)
        machine.reset_measurements()
        ctx.row_overhead()
        counters = machine.pmu.counters
        profile = ctx.profile
        assert counters.n_load_inst == (profile.state_loads_per_row
                                        + profile.cold_loads_per_row)
        assert counters.n_store_inst == profile.state_stores_per_row

    def test_produce_overhead_lighter_than_row(self, machine):
        ctx = self.make_ctx(machine)
        machine.reset_measurements()
        ctx.row_overhead()
        row_ops = machine.pmu.counters.instructions
        machine.reset_measurements()
        ctx.produce_overhead()
        produce_ops = machine.pmu.counters.instructions
        assert produce_ops < row_ops

    def test_tcm_state_split(self, arm_machine):
        """With an overflow region, only the covered fraction goes to TCM."""
        tcm_region = arm_machine.tcm.alloc(2048, "state")
        ctx = ExecContext(
            machine=arm_machine, profile=sqlite_like(), catalog=None,
            temp=TempArena(arm_machine, 4096), sink=OutputSink(arm_machine),
            state_region=tcm_region,
            state_overflow_region=arm_machine.address_space.alloc(4096, "ovf"),
            state_tcm_fraction=0.65,
        )
        arm_machine.reset_measurements()
        ctx.row_overhead()
        counters = arm_machine.pmu.counters
        total_loads = counters.n_tcm_load + counters.n_l1d
        assert counters.n_tcm_load == pytest.approx(0.65 * total_loads, rel=0.05)
