"""Tests of work_mem spill behaviour in sort / hash join / aggregate."""

import dataclasses

from repro import Machine, tiny_intel
from repro.db import Database, postgres_like
from repro.db.exprs import Col
from repro.db.planner import Aggregate, Join, Scan, Sort
from repro.db.operators import AggSpec
from repro.db.types import Column, FLOAT, INT, Schema

SCHEMA = Schema([Column("k", INT), Column("v", FLOAT)])
ROWS = [(i, float(i * 7 % 101)) for i in range(600)]


def tiny_workmem_db(work_mem: int):
    profile = dataclasses.replace(postgres_like(), work_mem_bytes=work_mem)
    machine = Machine(tiny_intel())
    db = Database(machine, profile, name="spill")
    db.create_table("t", SCHEMA, ROWS, primary_key="k")
    db.create_table("u", SCHEMA, ROWS, primary_key="k")
    return machine, db


class TestSpill:
    def test_sort_spills_when_over_budget(self):
        machine, db = tiny_workmem_db(work_mem=1024)
        machine.disk.reset_stats()
        rows = db.execute(Sort(Scan("t"), ((Col("v"), False),)))
        assert [r[1] for r in rows] == sorted(r[1] for r in ROWS)
        assert machine.disk.writes > 0  # the external-merge round trip

    def test_sort_no_spill_with_room(self):
        machine, db = tiny_workmem_db(work_mem=1 << 22)
        db.execute(Scan("t"))  # warm the pool so the scan itself is diskless
        machine.disk.reset_stats()
        db.execute(Sort(Scan("t"), ((Col("v"), False),)))
        assert machine.disk.writes == 0

    def test_hash_join_spills(self):
        machine, db = tiny_workmem_db(work_mem=1024)
        machine.disk.reset_stats()
        rows = db.execute(Join(Scan("t"), Scan("u"), Col("k"), Col("k")))
        assert len(rows) == len(ROWS)
        assert machine.disk.writes > 0

    def test_spill_correctness_unchanged(self):
        """Spilling affects energy/time, never results."""
        _, small = tiny_workmem_db(work_mem=1024)
        _, big = tiny_workmem_db(work_mem=1 << 22)
        plan = Aggregate(Scan("t"), (("k", Col("k")),),
                         (AggSpec("s", "sum", Col("v")),))
        assert sorted(small.execute(plan)) == sorted(big.execute(plan))
