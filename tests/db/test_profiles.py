"""Tests of the three engine profiles (Table 4 knobs)."""

import pytest

from repro.db.profiles import (
    BASELINE,
    LARGE,
    SMALL,
    engine_profile,
    mysql_like,
    postgres_like,
    sqlite_like,
)
from repro.errors import ConfigError


class TestKnobs:
    def test_settings_scale_memory(self):
        for factory in (postgres_like, sqlite_like, mysql_like):
            small = factory(SMALL)
            base = factory(BASELINE)
            large = factory(LARGE)
            assert (small.buffer_pool_bytes < base.buffer_pool_bytes
                    < large.buffer_pool_bytes)

    def test_sqlite_page_size_knob(self):
        assert sqlite_like(SMALL).page_size == 4 * 1024
        assert sqlite_like(BASELINE).page_size == 8 * 1024
        assert sqlite_like(LARGE).page_size == 16 * 1024

    def test_storage_kinds(self):
        assert postgres_like().table_storage == "heap"
        assert sqlite_like().table_storage == "clustered"
        assert mysql_like().table_storage == "clustered"

    def test_join_strategies(self):
        assert postgres_like().join_strategy == "hash"
        assert sqlite_like().join_strategy == "index_nl"

    def test_mysql_heaviest_interpreter(self):
        assert (mysql_like().state_other_per_row
                > postgres_like().state_other_per_row)
        assert (mysql_like().state_other_per_row
                > sqlite_like().state_other_per_row)

    def test_sqlite_most_hot_loads(self):
        assert (sqlite_like().state_loads_per_row
                > postgres_like().state_loads_per_row)

    def test_factory_lookup(self):
        assert engine_profile("mysql").name == "mysql"
        with pytest.raises(ConfigError):
            engine_profile("oracle")

    def test_with_setting(self):
        profile = postgres_like(SMALL).with_setting(LARGE)
        assert profile.setting == LARGE
        assert profile.name == "postgresql"

    def test_invalid_setting(self):
        with pytest.raises(ConfigError):
            postgres_like("huge")
