"""Unit tests of the optimizer passes, the energy gate, and the
streaming top-N heap operator (``repro.db.optimizer``)."""

import pytest

from repro import Machine, tiny_intel
from repro.db import Database, mysql_like, postgres_like, sqlite_like
from repro.db.exprs import Col
from repro.db.optimizer import Optimizer, default_passes
from repro.db.optimizer.strategies import (
    LimitPushdown,
    OptimizationStrategy,
    OptimizerContext,
    PredicatePushdown,
    ProjectionPruning,
)
from repro.db.planner import Limit, Scan, Sort
from repro.workloads.tpch import TpchData, load_into
from repro.workloads.tpch.queries import QUERIES

SEED = 20200330


def loaded(profile, seed=SEED, name=None):
    machine = Machine(tiny_intel())
    db = Database(machine, profile,
                  name=name or f"opt-{profile.name}-{seed}")
    load_into(db, TpchData("10MB", seed=seed))
    return db


@pytest.fixture(scope="module")
def db():
    return loaded(postgres_like())


@pytest.fixture(scope="module")
def ctx(db):
    return OptimizerContext.build(db.catalog, db.profile)


PLAN_QUERIES = sorted(n for n in QUERIES if QUERIES[n].plan is not None)


class TestPassIdempotence:
    """Applying a rewrite pass twice must equal applying it once."""

    @pytest.mark.parametrize("strategy_cls", [
        PredicatePushdown, ProjectionPruning, LimitPushdown,
    ])
    def test_idempotent_on_every_tpch_plan(self, ctx, strategy_cls):
        strategy = strategy_cls()
        for number in PLAN_QUERIES:
            once = strategy.apply(QUERIES[number].plan, ctx)
            twice = strategy.apply(once, ctx)
            assert twice == once, f"Q{number}: {strategy.name} not settled"


class TestTopNHeap:
    """Bounded sort lowers to TopNHeapOp and equals the full sort."""

    def sort_plan(self, limit=None):
        scan = Scan("orders")
        keys = ((Col("o_totalprice"), True), (Col("o_orderkey"), False))
        if limit is None:
            return Limit(Sort(scan, keys), 7)
        return Sort(scan, keys, limit)

    def test_bounded_sort_lowers_to_heap(self, db):
        from repro.db.operators import SortOp, TopNHeapOp

        assert isinstance(db.plan(self.sort_plan(limit=7)), TopNHeapOp)
        assert isinstance(db.plan(Sort(Scan("orders"), (
            (Col("o_totalprice"), True),))), SortOp)

    def test_topn_equals_full_sort_prefix(self, db):
        full = db.execute(self.sort_plan())          # Limit over full Sort
        topn = db.execute(self.sort_plan(limit=7))   # bounded -> heap
        assert topn == full

    def test_topn_equals_full_sort_when_input_fits(self, db):
        # limit >= n rows: the heap never evicts, output is the full sort.
        n = db.catalog.table("customer").storage.n_rows
        keys = ((Col("c_acctbal"), False),)
        full = db.execute(Sort(Scan("customer"), keys))
        topn = db.execute(Sort(Scan("customer"), keys, n + 10))
        assert topn == full


class TestEnergyGate:
    def test_worse_proposal_is_rejected(self, db):
        class Pessimiser(OptimizationStrategy):
            """Re-sorts the output by its own sort keys: equivalent,
            but strictly adds a full sort's micro-ops."""

            name = "pessimiser"

            def apply(self, plan, ctx):
                return Sort(plan, plan.keys)

        optimizer = Optimizer(db.catalog, db.profile,
                              passes=(Pessimiser(),))
        plan = QUERIES[1].plan
        result = optimizer.optimize(plan)
        assert result.plan == plan
        assert result.passes[0].changed
        assert not result.passes[0].kept
        assert result.kept_passes == ()

    def test_kept_passes_never_raise_predicted_energy(self, db):
        optimizer = Optimizer(db.catalog, db.profile)
        for number in PLAN_QUERIES:
            result = optimizer.optimize(QUERIES[number].plan)
            assert result.predicted_j <= result.predicted_baseline_j * (
                1.0 + 1e-6
            ), f"Q{number}"


class TestJoinOrderStability:
    def test_same_seed_same_choice(self):
        """Two identically seeded loads must optimize to identical
        trees — the DP reads only catalog + sampled stats, both
        deterministic functions of the data."""
        db_a = loaded(sqlite_like(), name="opt-stab-a")
        db_b = loaded(sqlite_like(), name="opt-stab-b")
        opt_a = Optimizer(db_a.catalog, db_a.profile)
        opt_b = Optimizer(db_b.catalog, db_b.profile)
        for number in (3, 5, 10):
            plan = QUERIES[number].plan
            assert opt_a.optimize(plan).plan == opt_b.optimize(plan).plan

    def test_optimize_is_deterministic(self, db):
        optimizer = Optimizer(db.catalog, db.profile)
        for number in (3, 5, 10, 18):
            plan = QUERIES[number].plan
            assert optimizer.optimize(plan).plan == \
                optimizer.optimize(plan).plan


class TestEquivalence:
    """Optimized plans return the same rows (spot check; the full
    22-query x 3-engine sweep lives in tests/workloads)."""

    @pytest.mark.parametrize("profile_fn", [
        postgres_like, sqlite_like, mysql_like,
    ])
    def test_q3_rows_identical(self, profile_fn):
        db = loaded(profile_fn(), name=f"opt-eq-{profile_fn.__name__}")
        optimizer = Optimizer(db.catalog, db.profile)
        plan = QUERIES[3].plan
        result = optimizer.optimize(plan)
        assert db.execute(result.plan) == db.execute(plan)


class TestDefaultPipeline:
    def test_default_passes_cover_every_family(self):
        names = [p.name for p in default_passes()]
        assert names == [
            "predicate-pushdown", "projection-pruning", "limit-pushdown",
            "join-order", "access-path",
        ]
