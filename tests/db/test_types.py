"""Unit tests for Schema / Column / row layout."""

import pytest

from repro.db.types import Column, DATE, FLOAT, INT, ROW_HEADER_BYTES, STR, Schema
from repro.errors import CatalogError


class TestColumn:
    def test_fixed_widths(self):
        assert Column("a", INT).width == 8
        assert Column("b", FLOAT).width == 8
        assert Column("c", DATE).width == 8

    def test_string_needs_width(self):
        with pytest.raises(CatalogError):
            Column("s", STR)

    def test_unknown_type(self):
        with pytest.raises(CatalogError):
            Column("x", "blob")


class TestSchema:
    def schema(self):
        return Schema([Column("a", INT), Column("s", STR, 20),
                       Column("b", FLOAT)])

    def test_offsets(self):
        s = self.schema()
        assert s.offsets[0] == ROW_HEADER_BYTES
        assert s.offsets[1] == ROW_HEADER_BYTES + 8
        assert s.offsets[2] == ROW_HEADER_BYTES + 28

    def test_row_size(self):
        assert self.schema().row_size == ROW_HEADER_BYTES + 8 + 20 + 8

    def test_index_of(self):
        assert self.schema().index_of("s") == 1

    def test_unknown_column(self):
        with pytest.raises(CatalogError):
            self.schema().index_of("zz")

    def test_contains(self):
        s = self.schema()
        assert "a" in s and "zz" not in s

    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError):
            Schema([Column("a", INT), Column("a", INT)])

    def test_empty_rejected(self):
        with pytest.raises(CatalogError):
            Schema([])

    def test_project(self):
        s = self.schema().project(["b", "a"])
        assert s.names() == ("b", "a")

    def test_concat(self):
        left = Schema([Column("a", INT)])
        right = Schema([Column("b", INT)])
        assert left.concat(right).names() == ("a", "b")

    def test_concat_renames_collisions(self):
        left = Schema([Column("a", INT), Column("k", INT)])
        right = Schema([Column("k", INT), Column("b", INT)])
        merged = left.concat(right)
        assert merged.names() == ("a", "k", "k_r", "b")
