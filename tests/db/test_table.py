"""Tests for heap and clustered table storage."""

import pytest


from repro.db.bufferpool import BufferPool
from repro.db.table import build_clustered, build_heap
from repro.db.types import Column, INT, STR, Schema

SCHEMA = Schema([Column("k", INT), Column("v", INT), Column("s", STR, 24)])
ROWS = [(i, i * 3, f"s{i}") for i in range(200)]


@pytest.fixture
def heap(machine):
    pool = BufferPool(machine, 16 * 1024, 4096)
    return machine, build_heap(machine, SCHEMA, ROWS, 4096, pool, file_id=1)


@pytest.fixture
def clustered(machine):
    shuffled = ROWS[::2] + ROWS[1::2]
    return machine, build_clustered(machine, SCHEMA, 0, shuffled,
                                    node_bytes=1024)


class TestHeap:
    def test_seq_scan_order(self, heap):
        _, table = heap
        got = [row for row, _ in table.seq_scan((0, 1))]
        assert got == ROWS

    def test_fetch_row(self, heap):
        _, table = heap
        page_no, slot = table.file.locate(57)
        assert table.fetch_row((page_no, slot), (0, 1, 2)) == ROWS[57]

    def test_scan_loads_only_needed_columns(self, heap):
        machine, table = heap
        list(table.seq_scan((0,)))
        machine.reset_measurements()
        list(table.seq_scan((0,)))
        narrow = machine.pmu.counters.n_load_inst
        machine.reset_measurements()
        list(table.seq_scan((0, 1, 2)))
        wide = machine.pmu.counters.n_load_inst
        assert wide > narrow

    def test_wide_string_column_costs_multiple_loads(self, heap):
        machine, table = heap
        list(table.seq_scan((2,)))
        machine.reset_measurements()
        list(table.seq_scan((2,)))   # 24B string = 3 words
        with_string = machine.pmu.counters.n_load_inst
        machine.reset_measurements()
        list(table.seq_scan((0,)))   # 8B int = 1 word
        int_only = machine.pmu.counters.n_load_inst
        assert with_string >= int_only * 2


class TestClustered:
    def test_scan_is_key_ordered(self, clustered):
        _, table = clustered
        got = [row for row, _ in table.seq_scan((0, 1))]
        assert got == ROWS  # sorted by key despite shuffled input

    def test_key_lookup(self, clustered):
        _, table = clustered
        assert table.key_lookup(57, (0, 1, 2)) == ROWS[57]
        assert table.key_lookup(9999, (0,)) is None

    def test_key_range(self, clustered):
        _, table = clustered
        got = [row for row, _ in table.key_range(10, 20, (0,))]
        assert got == ROWS[10:21]

    def test_n_rows(self, clustered):
        _, table = clustered
        assert table.n_rows == 200

    def test_pager_charges_disk_for_cold_leaves(self, machine):
        table = build_clustered(machine, SCHEMA, 0, ROWS, node_bytes=1024,
                                pager_pages=2)
        machine.reset_measurements()
        list(table.seq_scan((0,)))
        assert machine.idle_s > 0  # pager misses hit the disk
