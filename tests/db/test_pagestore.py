"""Unit tests for the paged file."""

import pytest

from repro.db.pagestore import PAGE_HEADER_BYTES, PagedFile, PageId
from repro.db.types import Column, INT, Schema
from repro.errors import DatabaseError


def schema():
    return Schema([Column("k", INT), Column("v", INT)])


def file_with(n_rows, page_size=4096):
    f = PagedFile(1, schema(), page_size, first_block=100)
    f.append_rows([(i, i * 2) for i in range(n_rows)])
    return f


class TestLayout:
    def test_rows_per_page(self):
        f = PagedFile(1, schema(), 4096)
        expected = (4096 - PAGE_HEADER_BYTES) // schema().row_size
        assert f.rows_per_page == expected

    def test_row_too_wide(self):
        from repro.db.types import STR
        wide = Schema([Column("s", STR, 5000)])
        with pytest.raises(DatabaseError):
            PagedFile(1, wide, 4096)

    def test_page_count(self):
        f = file_with(500)
        assert f.n_pages == (500 + f.rows_per_page - 1) // f.rows_per_page
        assert f.n_rows == 500

    def test_arity_check(self):
        f = PagedFile(1, schema(), 4096)
        with pytest.raises(DatabaseError):
            f.append_rows([(1, 2, 3)])


class TestAccess:
    def test_locate_round_trip(self):
        f = file_with(500)
        for i in (0, 1, f.rows_per_page, 499):
            page_no, slot = f.locate(i)
            assert f.row_at(page_no, slot) == (i, i * 2)

    def test_locate_out_of_range(self):
        f = file_with(10)
        with pytest.raises(DatabaseError):
            f.locate(10)

    def test_page_out_of_range(self):
        f = file_with(10)
        with pytest.raises(DatabaseError):
            f.page(99)

    def test_bad_slot(self):
        f = file_with(10)
        with pytest.raises(DatabaseError):
            f.row_at(0, 9999)

    def test_blocks_sequential(self):
        f = file_with(500)
        blocks = [f.block_of(p) for p in range(f.n_pages)]
        assert blocks == list(range(100, 100 + f.n_pages))

    def test_page_ids(self):
        f = file_with(100)
        ids = list(f.page_ids())
        assert ids[0] == PageId(1, 0)
        assert len(ids) == f.n_pages
