"""Interleaved execution sessions (``Database.session`` /
``execute_iter``) — the primitive the serving loop's time-slicing is
built on."""

import itertools

from repro.db.planner import Scan


def plan(db, table="orders"):
    return db.plan(Scan(table, access="seq"))


class TestInterleavedResults:
    def test_two_interleaved_scans_match_serial(self, postgres_db):
        serial = list(postgres_db.execute(plan(postgres_db)))
        a = postgres_db.execute_iter(plan(postgres_db), slot=0)
        b = postgres_db.execute_iter(plan(postgres_db), slot=1)
        rows_a, rows_b = [], []
        for ra, rb in itertools.zip_longest(a, b):
            if ra is not None:
                rows_a.append(ra)
            if rb is not None:
                rows_b.append(rb)
        assert rows_a == serial
        assert rows_b == serial

    def test_interleaving_different_tables(self, postgres_db):
        serial_o = list(postgres_db.execute(plan(postgres_db, "orders")))
        serial_c = list(postgres_db.execute(plan(postgres_db, "customer")))
        a = postgres_db.execute_iter(plan(postgres_db, "orders"), slot=0)
        b = postgres_db.execute_iter(plan(postgres_db, "customer"), slot=1)
        rows_a = [next(a) for _ in range(3)]  # partially drain A first
        rows_b = list(b)
        rows_a += list(a)
        assert rows_a == serial_o
        assert rows_b == serial_c


class TestSessionAccounting:
    def test_pool_stats_delta_counts_only_the_window(self, postgres_db):
        warm = postgres_db.session(plan(postgres_db), slot=0)
        list(warm.rows())
        session = postgres_db.session(plan(postgres_db), slot=0)
        assert session.pool_stats().accesses == 0  # nothing pulled yet
        list(session.rows())
        delta = session.pool_stats()
        assert delta.accesses > 0
        assert delta.hits == delta.accesses  # second pass is all-hit

    def test_sessions_never_reset_shared_counters(self, postgres_db):
        pool = postgres_db._pool
        before = pool.stats()
        session = postgres_db.session(plan(postgres_db), slot=0)
        list(session.rows())
        after = pool.stats()
        # The live counters only ever grow; snapshotting is read-only.
        assert after.accesses >= before.accesses + session.pool_stats().accesses

    def test_same_slot_reuses_warm_arena(self, postgres_db):
        first = postgres_db.session(plan(postgres_db), slot=3)
        list(first.rows())
        second = postgres_db.session(plan(postgres_db), slot=3)
        assert second._temp is first._temp

    def test_distinct_slots_use_distinct_arenas(self, postgres_db):
        a = postgres_db.session(plan(postgres_db), slot=0)
        b = postgres_db.session(plan(postgres_db), slot=1)
        assert a._temp is not b._temp


class TestFinishSemantics:
    def test_session_marks_finished(self, postgres_db):
        session = postgres_db.session(plan(postgres_db), slot=0)
        assert not session.finished
        list(session.rows())
        assert session.finished

    def test_partial_drain_not_finished(self, postgres_db):
        session = postgres_db.session(plan(postgres_db), slot=0)
        iterator = session.rows()
        next(iterator)
        assert not session.finished
