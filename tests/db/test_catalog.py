"""Tests for the catalog."""

import pytest

from repro import Machine, tiny_intel
from repro.db import Database, postgres_like
from repro.db.catalog import Catalog
from repro.db.types import Column, INT, Schema
from repro.errors import CatalogError


def loaded_db():
    db = Database(Machine(tiny_intel()), postgres_like())
    schema = Schema([Column("a", INT), Column("b", INT)])
    db.create_table("t", schema, [(1, 2)], primary_key="a", indexes=["b"])
    return db


class TestCatalog:
    def test_lookup(self):
        db = loaded_db()
        assert db.catalog.table("t").name == "t"

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().table("missing")

    def test_contains(self):
        db = loaded_db()
        assert "t" in db.catalog
        assert "u" not in db.catalog

    def test_index_on(self):
        table = loaded_db().catalog.table("t")
        assert table.index_on("b").column == "b"
        assert table.index_on("a") is not None  # heap PK index

    def test_tables_listing(self):
        assert [t.name for t in loaded_db().catalog.tables()] == ["t"]

    def test_index_on_unknown_column_rejected(self):
        from repro.db.catalog import IndexDef
        db = loaded_db()
        with pytest.raises(CatalogError):
            db.catalog.add_index(
                IndexDef("bad", "t", "zz", tree=None)
            )
