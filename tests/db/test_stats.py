"""Tests of the sampled table statistics (``repro.db.stats``)."""

import pytest

from repro import Machine, tiny_intel
from repro.db import Database, postgres_like
from repro.db.stats import SAMPLE_TARGET, Statistics, collect
from repro.workloads.tpch import TpchData, load_into


@pytest.fixture(scope="module")
def db():
    machine = Machine(tiny_intel())
    db = Database(machine, postgres_like(), name="stats-db")
    load_into(db, TpchData("10MB", seed=20200330))
    return db


@pytest.fixture(scope="module")
def stats(db):
    return Statistics(db.catalog)


class TestCollection:
    def test_sample_bounded(self, db):
        for name in ("lineitem", "orders", "customer"):
            ts = collect(db.catalog.table(name))
            assert 0 < ts.sampled <= 2 * SAMPLE_TARGET
            assert ts.n_rows == db.catalog.table(name).storage.n_rows

    def test_small_table_sampled_fully(self, db):
        ts = collect(db.catalog.table("customer"))
        if ts.n_rows <= SAMPLE_TARGET:
            assert ts.sampled == ts.n_rows
            assert len(ts.rows) == ts.n_rows

    def test_collection_leaves_machine_counters_alone(self, db):
        before = db.machine.cpu.counters.as_dict()
        collect(db.catalog.table("lineitem"))
        assert db.machine.cpu.counters.as_dict() == before

    def test_memoised_and_invalidated(self, stats):
        first = stats.table("orders")
        assert stats.table("orders") is first
        stats.invalidate("orders")
        assert stats.table("orders") is not first


class TestSelectivity:
    def test_range_selectivity_tracks_actual_fraction(self, db, stats):
        table = db.catalog.table("lineitem")
        idx = table.schema.index_of("l_quantity")
        rows = list(table.storage.peek_rows())
        actual = sum(1 for r in rows if r[idx] <= 25) / len(rows)
        cs = stats.table("lineitem").column("l_quantity")
        est = cs.range_selectivity(hi=25)
        assert est == pytest.approx(actual, abs=0.1)

    def test_eq_selectivity_of_unseen_value_uses_distinct(self, stats):
        cs = stats.table("orders").column("o_orderkey")
        est = cs.eq_selectivity(-1)
        assert est is not None
        assert 0 < est <= 1.0 / max(cs.n_distinct, 1) + 1e-12

    def test_uncomparable_value_returns_none(self, stats):
        cs = stats.table("orders").column("o_orderkey")
        assert cs.eq_selectivity(object()) is None


class TestSampleJoin:
    def test_unfiltered_fk_join_estimates_fact_side(self, db, stats):
        from repro.db.exprs import Col

        est = stats.sample_join_rows(
            "orders", None, Col("o_custkey"),
            "customer", None, Col("c_custkey"),
        )
        n_orders = db.catalog.table("orders").storage.n_rows
        # Every order has a customer: the join is |orders|-sized.
        assert est == pytest.approx(n_orders, rel=0.35)

    def test_correlated_filters_beat_independence(self, db, stats):
        """TPC-H Q3's anti-correlated date filters: the sample join must
        land close to the true cardinality, not the independence
        estimate (an order of magnitude high)."""
        from repro.db.exprs import Col
        from repro.workloads.tpch.queries import QUERIES

        plan = QUERIES[3].plan
        # Walk to the innermost join: lineitem (filtered) x orders
        # (filtered) on the order key.
        node = plan
        while not hasattr(node, "left"):
            node = node.child
        inner = node.left

        l_scan, o_scan = inner.left, inner.right
        est = stats.sample_join_rows(
            l_scan.table, l_scan.predicate, inner.left_key,
            o_scan.table, o_scan.predicate, inner.right_key,
        )
        actual = len(db.execute(inner))
        # 10MB samples the whole table, so the sample join is exact.
        assert est == pytest.approx(actual, rel=0.01)

    def test_memoised(self, stats):
        from repro.db.exprs import Col

        args = ("orders", None, Col("o_custkey"),
                "customer", None, Col("c_custkey"))
        assert stats.sample_join_rows(*args) == stats.sample_join_rows(*args)
