"""Tests that repeated logging configuration stays idempotent."""

import logging

import pytest

from repro.logconfig import configure_logging, reset_logging


@pytest.fixture(autouse=True)
def clean_logger():
    reset_logging()
    yield
    reset_logging()


def _owned_handlers():
    logger = logging.getLogger("repro")
    return [h for h in logger.handlers
            if getattr(h, "_repro_logconfig_owned", False)]


class TestConfigureLogging:
    def test_repeat_calls_leave_one_handler(self):
        for _ in range(5):
            configure_logging(0)
        assert len(_owned_handlers()) == 1

    def test_verbosity_changes_only_adjust_level(self):
        configure_logging(0)
        handler = _owned_handlers()[0]
        configure_logging(2)
        logger = logging.getLogger("repro")
        assert logger.level == logging.DEBUG
        assert _owned_handlers() == [handler]
        configure_logging(1)
        assert logger.level == logging.INFO
        configure_logging(0)
        assert logger.level == logging.WARNING

    def test_duplicate_owned_handlers_collapsed(self):
        # A reloaded module (or a buggy embedder) can leave two owned
        # handlers behind; reconfiguration must collapse them to one.
        configure_logging(0)
        logger = logging.getLogger("repro")
        extra = logging.StreamHandler()
        extra._repro_logconfig_owned = True
        logger.addHandler(extra)
        assert len(_owned_handlers()) == 2
        configure_logging(0)
        assert len(_owned_handlers()) == 1

    def test_foreign_handler_respected(self):
        # A host application that hung its own handler on the "repro"
        # logger keeps it, and we don't double-log through ours.
        logger = logging.getLogger("repro")
        foreign = logging.NullHandler()
        logger.addHandler(foreign)
        try:
            configure_logging(0)
            assert foreign in logger.handlers
            assert _owned_handlers() == []
        finally:
            logger.removeHandler(foreign)

    def test_root_logger_untouched(self):
        root_handlers = list(logging.getLogger().handlers)
        configure_logging(2)
        assert list(logging.getLogger().handlers) == root_handlers
        assert not logging.getLogger("repro").propagate


class TestResetLogging:
    def test_reset_then_reconfigure(self):
        configure_logging(1)
        reset_logging()
        assert _owned_handlers() == []
        assert logging.getLogger("repro").level == logging.NOTSET
        configure_logging(0)
        assert len(_owned_handlers()) == 1
